// Package estimate implements the paper's triangulation performance
// estimator (§4.3).
//
// When the tuning server wants the performance of a configuration the
// historical data never measured, it selects k "appropriate" recorded
// configurations (vertices), lifts them into an N+1-dimensional space whose
// extra axis is performance, fits the hyperplane
//
//	[C_i 1]·x = P_i
//
// through them (exactly for a square system, least squares otherwise), and
// evaluates the plane at the target: P_t = [C_t 1]·x. Geometrically this is
// interpolation or extrapolation on the simplex spanned by the chosen
// vertices — the Figure 3 construction.
//
// The paper notes the vertex choice is situational: near-in-space vertices
// suit a stable environment, latest-in-time vertices suit a drifting one.
// Both policies are implemented; the paper's current implementation (and our
// default) uses nearest-in-space.
package estimate

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"harmony/internal/linalg"
	"harmony/internal/search"
	"harmony/internal/stats"
)

// Record pairs a configuration with its measured performance. Seq orders
// records in measurement time (larger is newer).
type Record struct {
	Config search.Config
	Perf   float64
	Seq    int
}

// NeighborPolicy selects which recorded vertices form the simplex.
type NeighborPolicy int

const (
	// NearestInSpace picks the records closest to the target configuration
	// in normalized parameter space (the paper's current implementation).
	NearestInSpace NeighborPolicy = iota
	// LatestInTime picks the most recently measured records, for execution
	// environments that change frequently.
	LatestInTime
)

// ErrNoRecords is returned when estimation is attempted with no history.
var ErrNoRecords = errors.New("estimate: no historical records")

// VertexIndex answers k-nearest-neighbour queries over an indexed set of
// points (normalized configurations), returning indices into that set
// nearest first with ties toward the lower index — the same order the
// sort-based selection produces.
type VertexIndex interface {
	KNearest(target []float64, k int) []int
}

// IndexBuilder builds a VertexIndex over points. expdb.NewVertexIndex
// adapts the k-d tree; any spatial index with matching tie-breaks works.
type IndexBuilder func(points [][]float64) (VertexIndex, error)

// Estimator estimates performance at unmeasured configurations from
// historical records.
type Estimator struct {
	Space  *search.Space
	Policy NeighborPolicy
	// K is the number of vertices to fit through (default dim+1, the
	// simplex size of the paper's construction).
	K int
	// Index, when set, replaces the per-call O(n log n) sort of the
	// NearestInSpace vertex selection with a spatial index built once per
	// record set (Prepare / EstimateMany): the N+1-vertex selection then
	// costs O(k + log n) per target instead of a full scan-and-sort.
	Index IndexBuilder
}

// New returns an estimator over the space with the default policy.
func New(space *search.Space) *Estimator {
	return &Estimator{Space: space}
}

// Estimate predicts the performance at target from the records.
//
// Degenerate vertex sets (all vertices affinely dependent, e.g. repeated
// measurements of one configuration) cannot support a hyperplane; the
// estimator then falls back to an inverse-distance-weighted average of the
// selected vertices, which is well-defined for any non-empty history.
func (e *Estimator) Estimate(records []Record, target search.Config) (float64, error) {
	if len(records) == 0 {
		return 0, ErrNoRecords
	}
	if !e.Space.Contains(target) {
		return 0, fmt.Errorf("estimate: target %v not in space", target)
	}
	for _, r := range records {
		if len(r.Config) != e.Space.Dim() {
			return 0, fmt.Errorf("estimate: record config %v has wrong dimension", r.Config)
		}
	}

	k := e.K
	if k <= 0 {
		k = e.Space.Dim() + 1
	}
	chosen := e.selectVertices(records, target, k)
	return e.fitAndEval(chosen, target)
}

// Diagnostics describe the support behind one estimate: how far the chosen
// vertices sit from the target and how well the fitted hyperplane explains
// them. Estimation gates (the measure-once layer's short-circuit) use them
// to decide whether a computed value may stand in for a real measurement.
type Diagnostics struct {
	// Value is the estimated performance at the target.
	Value float64
	// Vertices is how many records supported the fit.
	Vertices int
	// MaxVertexDist is the largest normalized Euclidean distance from the
	// target to any chosen vertex. Small means interpolation among close
	// neighbours; large means extrapolation.
	MaxVertexDist float64
	// Residual is the RMS misfit of the hyperplane at the chosen vertices
	// (0 for an exactly determined square system). Large means the local
	// surface is not planar and the estimate should not be trusted.
	Residual float64
	// PerfScale is the largest |Perf| among the chosen vertices, for
	// relative residual checks.
	PerfScale float64
	// Degenerate reports that the vertex set was affinely dependent and
	// the rank-deficiency fallback (inverse-distance-weighted average) was
	// used instead of a plane fit.
	Degenerate bool
}

// fitAndEval fits the Figure 3 hyperplane through the chosen vertices and
// evaluates it at target, falling back to the inverse-distance-weighted
// average on a degenerate vertex set.
//
// The fit runs in normalized coordinates (better conditioned than raw
// values when parameter ranges differ by orders of magnitude).
func (e *Estimator) fitAndEval(chosen []Record, target search.Config) (float64, error) {
	d, err := e.fitAndEvalDetailed(chosen, target)
	return d.Value, err
}

// fitAndEvalDetailed is fitAndEval plus the gate-facing diagnostics.
func (e *Estimator) fitAndEvalDetailed(chosen []Record, target search.Config) (Diagnostics, error) {
	d := Diagnostics{Vertices: len(chosen)}
	tn := e.Space.Normalized(target)
	rows := make([][]float64, len(chosen))
	b := make([]float64, len(chosen))
	for i, r := range chosen {
		norm := e.Space.Normalized(r.Config)
		if dist := math.Sqrt(stats.SquaredError(norm, tn)); dist > d.MaxVertexDist {
			d.MaxVertexDist = dist
		}
		if s := math.Abs(r.Perf); s > d.PerfScale {
			d.PerfScale = s
		}
		rows[i] = append(norm, 1)
		b[i] = r.Perf
	}
	a := linalg.FromRows(rows)
	x, err := linalg.SolveLeastSquares(a, b)
	if err != nil {
		if errors.Is(err, linalg.ErrSingular) {
			d.Degenerate = true
			d.Value = e.weightedAverage(chosen, target)
			return d, nil
		}
		return d, err
	}
	// RMS residual of the fit at its own vertices: 0 when the system was
	// square (exact interpolation), the least-squares misfit otherwise.
	sum := 0.0
	for i := range rows {
		r := linalg.Dot(rows[i], x) - b[i]
		sum += r * r
	}
	d.Residual = math.Sqrt(sum / float64(len(rows)))
	tRow := append(tn, 1)
	d.Value = linalg.Dot(tRow, x)
	return d, nil
}

// selectVertices returns up to k records by the configured policy,
// deduplicated by configuration (duplicates add no geometric information
// and would always make the system singular).
func (e *Estimator) selectVertices(records []Record, target search.Config, k int) []Record {
	dedup := dedupRecords(records)

	switch e.Policy {
	case LatestInTime:
		sort.SliceStable(dedup, func(i, j int) bool { return dedup[i].Seq > dedup[j].Seq })
	default: // NearestInSpace
		tn := e.Space.Normalized(target)
		sort.SliceStable(dedup, func(i, j int) bool {
			di := stats.SquaredError(e.Space.Normalized(dedup[i].Config), tn)
			dj := stats.SquaredError(e.Space.Normalized(dedup[j].Config), tn)
			return di < dj
		})
	}
	if k > len(dedup) {
		k = len(dedup)
	}
	return dedup[:k]
}

// dedupRecords drops repeated configurations, keeping first occurrences in
// order (duplicates add no geometric information and would always make the
// hyperplane system singular).
func dedupRecords(records []Record) []Record {
	dedup := make([]Record, 0, len(records))
	seen := map[string]bool{}
	for _, r := range records {
		key := r.Config.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		dedup = append(dedup, r)
	}
	return dedup
}

// weightedAverage is the rank-deficiency fallback: inverse-distance-weighted
// mean of the vertex performances (an exact match returns its own value).
func (e *Estimator) weightedAverage(records []Record, target search.Config) float64 {
	tn := e.Space.Normalized(target)
	num, den := 0.0, 0.0
	for _, r := range records {
		d := stats.SquaredError(e.Space.Normalized(r.Config), tn)
		if d == 0 {
			return r.Perf
		}
		w := 1 / d
		num += w * r.Perf
		den += w
	}
	return num / den
}

// Prepared is an estimator bound to one record set: records are deduped,
// validated and (when the estimator has an Index and the NearestInSpace
// policy) spatially indexed exactly once, so per-target estimation avoids
// the O(n log n) scan-and-sort. Prepared is safe for concurrent Estimate
// calls when the underlying VertexIndex is (expdb's k-d tree is).
type Prepared struct {
	e      *Estimator
	dedup  []Record
	sorted []Record    // LatestInTime: presorted newest-first
	index  VertexIndex // NearestInSpace with Index: built once
}

// Prepare validates and indexes records for repeated estimation.
func (e *Estimator) Prepare(records []Record) (*Prepared, error) {
	for _, r := range records {
		if len(r.Config) != e.Space.Dim() {
			return nil, fmt.Errorf("estimate: record config %v has wrong dimension", r.Config)
		}
	}
	p := &Prepared{e: e, dedup: dedupRecords(records)}
	switch e.Policy {
	case LatestInTime:
		p.sorted = append([]Record(nil), p.dedup...)
		sort.SliceStable(p.sorted, func(i, j int) bool { return p.sorted[i].Seq > p.sorted[j].Seq })
	default: // NearestInSpace
		if e.Index != nil && len(p.dedup) > 0 {
			pts := make([][]float64, len(p.dedup))
			for i, r := range p.dedup {
				pts[i] = e.Space.Normalized(r.Config)
			}
			idx, err := e.Index(pts)
			if err != nil {
				return nil, fmt.Errorf("estimate: building vertex index: %w", err)
			}
			p.index = idx
		}
	}
	return p, nil
}

// Estimate predicts the performance at target from the prepared records.
func (p *Prepared) Estimate(target search.Config) (float64, error) {
	d, err := p.EstimateDetailed(target)
	return d.Value, err
}

// EstimateDetailed is Estimate plus the diagnostics an estimation gate
// needs to decide whether the computed value may replace a measurement.
func (p *Prepared) EstimateDetailed(target search.Config) (Diagnostics, error) {
	e := p.e
	if len(p.dedup) == 0 {
		return Diagnostics{}, ErrNoRecords
	}
	if !e.Space.Contains(target) {
		return Diagnostics{}, fmt.Errorf("estimate: target %v not in space", target)
	}
	k := e.K
	if k <= 0 {
		k = e.Space.Dim() + 1
	}
	if k > len(p.dedup) {
		k = len(p.dedup)
	}
	var chosen []Record
	switch {
	case p.sorted != nil:
		chosen = p.sorted[:k]
	case p.index != nil:
		ids := p.index.KNearest(e.Space.Normalized(target), k)
		chosen = make([]Record, len(ids))
		for i, id := range ids {
			chosen[i] = p.dedup[id]
		}
	default:
		chosen = e.selectVertices(p.dedup, target, k)
	}
	return e.fitAndEvalDetailed(chosen, target)
}

// EstimateMany predicts each target in turn, sharing the record set — and,
// when the estimator carries an Index, sharing one index build across all
// targets.
func (e *Estimator) EstimateMany(records []Record, targets []search.Config) ([]float64, error) {
	if len(records) == 0 && len(targets) > 0 {
		return nil, ErrNoRecords
	}
	p, err := e.Prepare(records)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(targets))
	for i, t := range targets {
		v, err := p.Estimate(t)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
