package estimate

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"harmony/internal/search"
)

func space2(t testing.TB) *search.Space {
	t.Helper()
	return search.MustSpace(
		search.Param{Name: "x", Min: 0, Max: 10, Step: 1, Default: 5},
		search.Param{Name: "y", Min: 0, Max: 10, Step: 1, Default: 5},
	)
}

// affine builds records of an affine function perf = a·x' + b·y' + c over
// normalized coordinates, which triangulation must reproduce exactly.
func affineRecords(s *search.Space, a, b, c float64, configs []search.Config) []Record {
	recs := make([]Record, len(configs))
	for i, cfg := range configs {
		n := s.Normalized(cfg)
		recs[i] = Record{Config: cfg, Perf: a*n[0] + b*n[1] + c, Seq: i}
	}
	return recs
}

func TestExactOnAffineInterpolation(t *testing.T) {
	s := space2(t)
	recs := affineRecords(s, 3, -2, 10, []search.Config{{0, 0}, {10, 0}, {0, 10}})
	est := New(s)
	// Interior target: interpolation.
	got, err := est.Estimate(recs, search.Config{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 3*0.4 - 2*0.4 + 10
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Estimate = %v, want %v", got, want)
	}
}

func TestExactOnAffineExtrapolation(t *testing.T) {
	s := space2(t)
	recs := affineRecords(s, 5, 1, 0, []search.Config{{2, 2}, {4, 2}, {2, 4}})
	est := New(s)
	// Target outside the simplex: extrapolation must still be exact.
	got, err := est.Estimate(recs, search.Config{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	want := 5.0 + 1.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Estimate = %v, want %v", got, want)
	}
}

func TestOverdeterminedLeastSquares(t *testing.T) {
	s := space2(t)
	// Five exact affine records: more rows than unknowns exercises QR.
	recs := affineRecords(s, 2, 7, -3,
		[]search.Config{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}})
	est := New(s)
	est.K = 5
	got, err := est.Estimate(recs, search.Config{3, 8})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*0.3 + 7*0.8 - 3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Estimate = %v, want %v", got, want)
	}
}

func TestUnderdeterminedFewRecords(t *testing.T) {
	s := space2(t)
	// Two records for three unknowns: the minimum-norm plane through both.
	recs := affineRecords(s, 1, 1, 0, []search.Config{{0, 0}, {10, 10}})
	est := New(s)
	got, err := est.Estimate(recs, search.Config{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// The plane must pass through the known records exactly.
	if math.Abs(got-0) > 1e-9 {
		t.Errorf("Estimate at known record = %v, want 0", got)
	}
}

func TestNearestInSpaceSelection(t *testing.T) {
	s := space2(t)
	est := New(s)
	est.K = 3
	// A cluster of three near the target plus a far decoy whose performance
	// would wreck the plane if selected.
	recs := []Record{
		{Config: search.Config{1, 1}, Perf: 10, Seq: 0},
		{Config: search.Config{2, 1}, Perf: 11, Seq: 1},
		{Config: search.Config{1, 2}, Perf: 12, Seq: 2},
		{Config: search.Config{10, 10}, Perf: -1000, Seq: 3},
	}
	got, err := est.Estimate(recs, search.Config{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Plane through the cluster: perf = 7 + 10*x' + 20*y' → at (0.2, 0.2): 13.
	if math.Abs(got-13) > 1e-6 {
		t.Errorf("Estimate = %v, want 13 (decoy must be excluded)", got)
	}
}

func TestLatestInTimeSelection(t *testing.T) {
	s := space2(t)
	est := New(s)
	est.Policy = LatestInTime
	est.K = 3
	// Old records near the target would predict ~0; the three newest
	// records define perf = 50 everywhere.
	recs := []Record{
		{Config: search.Config{2, 2}, Perf: 0, Seq: 0},
		{Config: search.Config{3, 2}, Perf: 0, Seq: 1},
		{Config: search.Config{2, 3}, Perf: 0, Seq: 2},
		{Config: search.Config{8, 8}, Perf: 50, Seq: 10},
		{Config: search.Config{9, 8}, Perf: 50, Seq: 11},
		{Config: search.Config{8, 9}, Perf: 50, Seq: 12},
	}
	got, err := est.Estimate(recs, search.Config{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-50) > 1e-6 {
		t.Errorf("Estimate = %v, want 50 (latest records only)", got)
	}
}

func TestDuplicateRecordsDeduplicated(t *testing.T) {
	s := space2(t)
	est := New(s)
	// Many duplicates of two points plus one independent point: after
	// dedup the fit is a clean plane.
	recs := []Record{
		{Config: search.Config{0, 0}, Perf: 0, Seq: 0},
		{Config: search.Config{0, 0}, Perf: 0, Seq: 1},
		{Config: search.Config{0, 0}, Perf: 0, Seq: 2},
		{Config: search.Config{10, 0}, Perf: 10, Seq: 3},
		{Config: search.Config{10, 0}, Perf: 10, Seq: 4},
		{Config: search.Config{0, 10}, Perf: 20, Seq: 5},
	}
	got, err := est.Estimate(recs, search.Config{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-30) > 1e-6 {
		t.Errorf("Estimate = %v, want 30", got)
	}
}

func TestDegenerateFallsBackToWeightedAverage(t *testing.T) {
	s := space2(t)
	est := New(s)
	// Collinear records: the plane is underdetermined in the perpendicular
	// direction; the x-coordinates are all identical so the normal-equation
	// system is singular. The fallback must return a sane average.
	recs := []Record{
		{Config: search.Config{5, 0}, Perf: 10, Seq: 0},
		{Config: search.Config{5, 5}, Perf: 20, Seq: 1},
		{Config: search.Config{5, 10}, Perf: 30, Seq: 2},
	}
	got, err := est.Estimate(recs, search.Config{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got < 10 || got > 30 {
		t.Errorf("fallback estimate = %v, want within [10, 30]", got)
	}
}

func TestExactRecordMatchViaFallback(t *testing.T) {
	s := space2(t)
	est := New(s)
	// A single record: under-determined everywhere; an exact-match target
	// must return the recorded value.
	recs := []Record{{Config: search.Config{3, 3}, Perf: 42, Seq: 0}}
	got, err := est.Estimate(recs, search.Config{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-42) > 1e-9 {
		t.Errorf("Estimate at recorded config = %v, want 42", got)
	}
}

func TestErrors(t *testing.T) {
	s := space2(t)
	est := New(s)
	if _, err := est.Estimate(nil, search.Config{1, 1}); !errors.Is(err, ErrNoRecords) {
		t.Errorf("empty records err = %v, want ErrNoRecords", err)
	}
	recs := []Record{{Config: search.Config{1, 1}, Perf: 1}}
	if _, err := est.Estimate(recs, search.Config{99, 1}); err == nil {
		t.Error("off-space target accepted")
	}
	bad := []Record{{Config: search.Config{1}, Perf: 1}}
	if _, err := est.Estimate(bad, search.Config{1, 1}); err == nil {
		t.Error("wrong-dimension record accepted")
	}
}

func TestEstimateMany(t *testing.T) {
	s := space2(t)
	recs := affineRecords(s, 10, 0, 0, []search.Config{{0, 0}, {10, 0}, {0, 10}})
	est := New(s)
	got, err := est.EstimateMany(recs, []search.Config{{0, 0}, {5, 0}, {10, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 10}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("EstimateMany[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := est.EstimateMany(recs, []search.Config{{99, 0}}); err == nil {
		t.Error("EstimateMany with bad target did not error")
	}
}

// Property: triangulation reproduces arbitrary affine functions exactly at
// arbitrary grid targets when given dim+1 affinely independent records.
func TestAffineExactnessProperty(t *testing.T) {
	s := space2(t)
	est := New(s)
	f := func(a8, b8, c8 int8, tx, ty uint8) bool {
		a, b, c := float64(a8)/4, float64(b8)/4, float64(c8)/4
		recs := affineRecords(s, a, b, c, []search.Config{{0, 0}, {10, 0}, {0, 10}})
		target := search.Config{int(tx) % 11, int(ty) % 11}
		got, err := est.Estimate(recs, target)
		if err != nil {
			return false
		}
		n := s.Normalized(target)
		want := a*n[0] + b*n[1] + c
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
