package estimate_test

import (
	"math"
	"testing"

	"harmony/internal/estimate"
	"harmony/internal/expdb"
	"harmony/internal/search"
)

// TestPreparedIndexMatchesSort: with the k-d tree index wired, the indexed
// vertex selection must agree with the sort-based selection everywhere on
// the grid. (External test package: expdb imports estimate, so this lives
// outside the package to avoid the cycle.)
func TestPreparedIndexMatchesSort(t *testing.T) {
	s := search.MustSpace(
		search.Param{Name: "x", Min: 0, Max: 10, Step: 1, Default: 5},
		search.Param{Name: "y", Min: 0, Max: 10, Step: 1, Default: 5},
	)
	var recs []estimate.Record
	seq := 0
	for x := 0; x <= 10; x += 2 {
		for y := 0; y <= 10; y += 2 {
			recs = append(recs, estimate.Record{Config: search.Config{x, y}, Perf: float64(3*x - 2*y), Seq: seq})
			seq++
		}
	}
	plain := estimate.New(s)
	indexed := estimate.New(s)
	indexed.Index = expdb.NewVertexIndex

	pPlain, err := plain.Prepare(recs)
	if err != nil {
		t.Fatal(err)
	}
	pIdx, err := indexed.Prepare(recs)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x <= 10; x++ {
		for y := 0; y <= 10; y++ {
			target := search.Config{x, y}
			a, errA := pPlain.Estimate(target)
			b, errB := pIdx.Estimate(target)
			if errA != nil || errB != nil {
				t.Fatalf("estimate errors at %v: %v, %v", target, errA, errB)
			}
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("indexed estimate %v != sorted estimate %v at %v", b, a, target)
			}
		}
	}
}
