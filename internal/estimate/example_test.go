package estimate_test

import (
	"fmt"

	"harmony/internal/estimate"
	"harmony/internal/search"
)

// ExampleEstimator_Estimate predicts the performance of a configuration the
// history never measured, by fitting a plane through the recorded vertices
// (the paper's Figure 3 triangulation).
func ExampleEstimator_Estimate() {
	space := search.MustSpace(
		search.Param{Name: "x", Min: 0, Max: 10, Step: 1, Default: 5},
		search.Param{Name: "y", Min: 0, Max: 10, Step: 1, Default: 5},
	)
	history := []estimate.Record{
		{Config: search.Config{0, 0}, Perf: 10, Seq: 0},
		{Config: search.Config{10, 0}, Perf: 30, Seq: 1},
		{Config: search.Config{0, 10}, Perf: 50, Seq: 2},
	}
	est := estimate.New(space)
	perf, err := est.Estimate(history, search.Config{5, 5})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("estimated performance at (5,5): %.0f\n", perf)
	// Output: estimated performance at (5,5): 40
}
