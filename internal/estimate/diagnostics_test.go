package estimate

import (
	"math"
	"testing"

	"harmony/internal/search"
)

// TestLatestInTimePrepared: the presorted Prepared path must pick the same
// newest-first vertices as the per-call Estimate path — including when
// records arrive out of Seq order.
func TestLatestInTimePrepared(t *testing.T) {
	s := space2(t)
	est := New(s)
	est.Policy = LatestInTime
	est.K = 3
	recs := []Record{
		{Config: search.Config{8, 9}, Perf: 50, Seq: 12}, // newest three first and last
		{Config: search.Config{2, 2}, Perf: 0, Seq: 0},
		{Config: search.Config{3, 2}, Perf: 0, Seq: 1},
		{Config: search.Config{8, 8}, Perf: 50, Seq: 10},
		{Config: search.Config{2, 3}, Perf: 0, Seq: 2},
		{Config: search.Config{9, 8}, Perf: 50, Seq: 11},
	}
	p, err := est.Prepare(recs)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []search.Config{{2, 2}, {9, 9}, {5, 5}} {
		got, err := p.Estimate(target)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-50) > 1e-6 {
			t.Errorf("Prepared Estimate(%v) = %v, want 50 (latest records only)", target, got)
		}
		direct, err := est.Estimate(recs, target)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-direct) > 1e-9 {
			t.Errorf("Prepared (%v) and direct (%v) estimates diverge at %v", got, direct, target)
		}
	}
}

// TestDiagnosticsExactFit: a square system through affine data fits
// exactly — zero residual, no degeneracy, distances as constructed.
func TestDiagnosticsExactFit(t *testing.T) {
	s := space2(t)
	est := New(s)
	recs := affineRecords(s, 3, -2, 10, []search.Config{{4, 4}, {6, 4}, {4, 6}})
	p, err := est.Prepare(recs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.EstimateDetailed(search.Config{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Degenerate {
		t.Fatal("exact fit flagged degenerate")
	}
	if d.Vertices != 3 {
		t.Fatalf("vertices = %d, want 3", d.Vertices)
	}
	if d.Residual > 1e-9 {
		t.Fatalf("residual = %v, want ~0 for a square system", d.Residual)
	}
	// Farthest vertex: (6,4) or (4,6) at normalized distance sqrt(0.01+0.01).
	wantDist := math.Sqrt(0.02)
	if math.Abs(d.MaxVertexDist-wantDist) > 1e-9 {
		t.Fatalf("max vertex dist = %v, want %v", d.MaxVertexDist, wantDist)
	}
	want := 3*0.5 - 2*0.5 + 10
	if math.Abs(d.Value-want) > 1e-9 {
		t.Fatalf("value = %v, want %v", d.Value, want)
	}
	if d.PerfScale <= 0 {
		t.Fatalf("perf scale = %v, want > 0", d.PerfScale)
	}
}

// TestDiagnosticsResidualOnCurvedSurface: an overdetermined fit through
// non-planar data must report the misfit so a gate can refuse it.
func TestDiagnosticsResidualOnCurvedSurface(t *testing.T) {
	s := space2(t)
	est := New(s)
	est.K = 5
	curved := func(cfg search.Config) float64 {
		x := float64(cfg[0]) - 5
		return x * x * 10
	}
	var recs []Record
	for i, cfg := range []search.Config{{3, 5}, {4, 5}, {5, 5}, {6, 5}, {7, 4}} {
		recs = append(recs, Record{Config: cfg, Perf: curved(cfg), Seq: i})
	}
	p, err := est.Prepare(recs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.EstimateDetailed(search.Config{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Degenerate {
		t.Fatal("curved fit flagged degenerate")
	}
	if d.Residual <= 1 {
		t.Fatalf("residual = %v, want a substantial misfit on a parabola", d.Residual)
	}
}

// TestDiagnosticsDegenerateVertices: affinely dependent vertices flag the
// fit degenerate and fall back to the weighted average.
func TestDiagnosticsDegenerateVertices(t *testing.T) {
	s := space2(t)
	est := New(s)
	recs := []Record{
		{Config: search.Config{5, 0}, Perf: 10, Seq: 0},
		{Config: search.Config{5, 5}, Perf: 20, Seq: 1},
		{Config: search.Config{5, 10}, Perf: 30, Seq: 2},
	}
	p, err := est.Prepare(recs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.EstimateDetailed(search.Config{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degenerate {
		t.Fatal("collinear vertex set not flagged degenerate")
	}
	if d.Value < 10 || d.Value > 30 {
		t.Fatalf("fallback value = %v, want within [10, 30]", d.Value)
	}
}
