package search

import (
	"sync"
)

// Synchronized wraps an Objective with a mutex so it can be handed to the
// parallel evaluation paths even when the underlying measurement function
// is not safe for concurrent use (for example because it draws from a
// shared noise source). The wrapper serializes measurements, so it protects
// correctness, not speed — measurement functions that are naturally
// concurrent-safe should be passed directly.
func Synchronized(obj Objective) Objective {
	var mu sync.Mutex
	return ObjectiveFunc(func(cfg Config) float64 {
		mu.Lock()
		defer mu.Unlock()
		return obj.Measure(cfg)
	})
}

// EvalBatch measures the configurations nearest to the given points, running
// up to workers measurements concurrently (sequentially when workers <= 1).
// The returned slices follow the input order for the longest prefix the
// evaluation budget allows; when the budget truncates the batch, err is
// ErrBudget and the slices cover the measured prefix.
//
// Cache and trace bookkeeping is deterministic: results are committed in
// input order regardless of measurement completion order, and duplicate
// configurations within the batch are measured once. The Objective must be
// safe for concurrent use when workers > 1 (wrap with Synchronized if not).
// EvalBatch itself must not be called concurrently with other Evaluator
// methods.
func (e *Evaluator) EvalBatch(pts [][]float64, workers int) ([]Config, []float64, error) {
	if workers <= 1 || e.DisableCache {
		// Sequential path (the cache-off mode re-measures duplicates, which
		// has no deterministic parallel equivalent).
		cfgs := make([]Config, 0, len(pts))
		perfs := make([]float64, 0, len(pts))
		for _, pt := range pts {
			cfg, perf, err := e.Eval(pt)
			if err != nil {
				return cfgs, perfs, err
			}
			cfgs = append(cfgs, cfg)
			perfs = append(perfs, perf)
		}
		return cfgs, perfs, nil
	}

	// Snap everything and find the configurations that need measuring, in
	// first-occurrence order.
	cfgs := make([]Config, len(pts))
	need := make([]Config, 0, len(pts))
	seen := map[string]bool{}
	for i, pt := range pts {
		cfgs[i] = e.Space.Snap(pt)
		key := cfgs[i].Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		if perf, ok := e.cache[key]; !ok {
			need = append(need, cfgs[i])
		} else {
			e.hits++
			if e.Tracer != nil {
				emit(e.Tracer, Event{Type: EventEval, Index: -1, Config: cfgs[i].Clone(), Perf: perf, Cached: true})
			}
		}
	}

	// Budget: only the first `allowed` missing configurations get measured.
	allowed := len(need)
	truncated := false
	if e.MaxEvals > 0 {
		remaining := e.MaxEvals - len(e.trace)
		if remaining < allowed {
			allowed, truncated = remaining, true
		}
		if allowed < 0 {
			allowed = 0
		}
	}
	measured := make([]float64, allowed)
	estimated := make([]bool, allowed)
	panics := runWorkers(allowed, workers, func(i int) {
		measured[i], estimated[i] = e.measure(need[i])
	})

	// A panic in any worker must unwind the caller's goroutine, not crash
	// the process: the server's blocking objective panics errAborted when a
	// client disconnects mid-batch, and that panic flows through here. Every
	// cleanly measured configuration is committed first, in input order —
	// the panic path only arises when the session is dying, and the partial
	// trace the server deposits should keep every measurement the client
	// paid for, regardless of where in the batch the disconnect struck. The
	// first (lowest-index) panic then re-raises, which keeps propagation
	// deterministic.
	var repanic any

	// Commit in input order. Tracer events follow the commit order — not
	// the (nondeterministic) measurement completion order — so the event
	// stream stays deterministic under parallel evaluation.
	for i := 0; i < allowed; i++ {
		if p := panics[i]; p != nil {
			if repanic == nil {
				repanic = p
			}
			continue
		}
		e.commit(need[i], measured[i], estimated[i])
	}
	if repanic != nil {
		panic(repanic)
	}

	// Assemble results for the longest answerable prefix.
	outC := make([]Config, 0, len(pts))
	outP := make([]float64, 0, len(pts))
	for _, cfg := range cfgs {
		perf, ok := e.cache[cfg.Key()]
		if !ok {
			return outC, outP, ErrBudget
		}
		outC = append(outC, cfg)
		outP = append(outP, perf)
	}
	if truncated {
		return outC, outP, ErrBudget
	}
	return outC, outP, nil
}

// runWorkers runs fn(i) for every i in [0, n) on up to `workers` concurrent
// goroutines and waits for all of them. Panics inside fn are captured
// per-index and returned (nil entries mean clean completion) so the caller
// can re-raise on its own goroutine — a panicking objective must unwind the
// caller, never crash the process from an anonymous goroutine. When several
// workers panic, the caller conventionally re-raises the lowest index,
// which keeps panic propagation deterministic.
func runWorkers(n, workers int, fn func(i int)) []any {
	if n <= 0 {
		return nil
	}
	panics := make([]any, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if rec := recover(); rec != nil {
					panics[i] = rec
				}
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
	return panics
}

// Speculation holds one round of concurrently measured candidate values
// that have not been committed to the evaluator: no budget was consumed, no
// trace entries were appended, and the cache is untouched. Commit happens
// selectively through EvalSpeculated. The zero value (or an empty
// speculation) is valid and makes EvalSpeculated equivalent to Eval.
//
// When the evaluator carries an External measure-once layer, every value a
// speculative round measures is remembered by that layer even if the round
// never commits it — so a candidate measured, discarded, and probed again
// iterations (or sessions) later costs nothing the second time. Before the
// layer existed, discarded speculative measurements were simply re-measured
// (the multipoint/pipelined path's duplicate-config double measurement).
type Speculation struct {
	perfs map[string]float64
	est   map[string]bool // keys answered by the estimation gate
}

// Len reports how many distinct configurations the round measured.
func (s *Speculation) Len() int {
	if s == nil {
		return 0
	}
	return len(s.perfs)
}

// Speculate concurrently measures every not-yet-cached configuration among
// the snapped candidate points, without committing anything. The simplex
// kernel uses it to overlap the measurements of all the candidates one
// iteration may need (reflection, expansion, both contractions) and then —
// via EvalSpeculated — commits only the ones the sequential algorithm
// actually probes, in the sequential order. For deterministic objectives
// the committed cache, trace, budget accounting and tracer stream are
// therefore byte-identical to the sequential kernel; only wall-clock
// changes. Candidates beyond the remaining evaluation budget are not
// measured (the sequential kernel could never commit them). The Objective
// must be safe for concurrent use; a panic in any measurement goroutine is
// re-raised on the caller's goroutine. With workers <= 1 (or a disabled
// cache, whose re-measure-everything semantics have no speculative
// equivalent) the round is empty and probes fall back to real evaluations.
func (e *Evaluator) Speculate(pts [][]float64, workers int) *Speculation {
	spec := &Speculation{perfs: map[string]float64{}, est: map[string]bool{}}
	if workers <= 1 || e.DisableCache {
		return spec
	}
	need := make([]Config, 0, len(pts))
	seen := map[string]bool{}
	for _, pt := range pts {
		cfg := e.Space.Snap(pt)
		key := cfg.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := e.cache[key]; ok {
			continue
		}
		if e.External != nil {
			// The measure-once layer may already know this candidate (a
			// prior run, a peer session, or an earlier discarded round);
			// answer it for free instead of queueing a measurement.
			if perf, est, ok := e.External.Lookup(cfg); ok {
				spec.perfs[key] = perf
				spec.est[key] = est
				continue
			}
		}
		need = append(need, cfg)
	}
	if e.MaxEvals > 0 {
		remaining := e.MaxEvals - len(e.trace)
		if remaining < 0 {
			remaining = 0
		}
		if remaining < len(need) {
			need = need[:remaining]
		}
	}
	if len(need) == 0 {
		return spec
	}
	perfs := make([]float64, len(need))
	ests := make([]bool, len(need))
	panics := runWorkers(len(need), workers, func(i int) {
		perfs[i], ests[i] = e.measure(need[i])
	})
	for _, p := range panics {
		if p != nil {
			panic(p) // nothing was committed; unwind the caller
		}
	}
	for i, cfg := range need {
		key := cfg.Key()
		spec.perfs[key] = perfs[i]
		spec.est[key] = ests[i]
	}
	return spec
}

// EvalSpeculated is Eval, except that when this round's speculation already
// measured the configuration the stored value is committed instead of
// calling the objective again. Commit semantics — cache entry, trace
// append, budget charge, tracer event — are identical to a fresh Eval, so
// traces cannot distinguish a speculated measurement from a sequential one.
func (e *Evaluator) EvalSpeculated(pt []float64, spec *Speculation) (Config, float64, error) {
	cfg := e.Space.Snap(pt)
	if spec != nil && !e.DisableCache {
		key := cfg.Key()
		if _, cached := e.cache[key]; !cached {
			if perf, ok := spec.perfs[key]; ok {
				if e.MaxEvals > 0 && len(e.trace) >= e.MaxEvals {
					return nil, 0, ErrBudget
				}
				e.commit(cfg, perf, spec.est[key])
				return cfg, perf, nil
			}
		}
	}
	return e.EvalConfig(cfg)
}
