package search

import (
	"sync"
)

// Synchronized wraps an Objective with a mutex so it can be handed to the
// parallel evaluation paths even when the underlying measurement function
// is not safe for concurrent use (for example because it draws from a
// shared noise source). The wrapper serializes measurements, so it protects
// correctness, not speed — measurement functions that are naturally
// concurrent-safe should be passed directly.
func Synchronized(obj Objective) Objective {
	var mu sync.Mutex
	return ObjectiveFunc(func(cfg Config) float64 {
		mu.Lock()
		defer mu.Unlock()
		return obj.Measure(cfg)
	})
}

// EvalBatch measures the configurations nearest to the given points, running
// up to workers measurements concurrently (sequentially when workers <= 1).
// The returned slices follow the input order for the longest prefix the
// evaluation budget allows; when the budget truncates the batch, err is
// ErrBudget and the slices cover the measured prefix.
//
// Cache and trace bookkeeping is deterministic: results are committed in
// input order regardless of measurement completion order, and duplicate
// configurations within the batch are measured once. The Objective must be
// safe for concurrent use when workers > 1 (wrap with Synchronized if not).
// EvalBatch itself must not be called concurrently with other Evaluator
// methods.
func (e *Evaluator) EvalBatch(pts [][]float64, workers int) ([]Config, []float64, error) {
	if workers <= 1 || e.DisableCache {
		// Sequential path (the cache-off mode re-measures duplicates, which
		// has no deterministic parallel equivalent).
		cfgs := make([]Config, 0, len(pts))
		perfs := make([]float64, 0, len(pts))
		for _, pt := range pts {
			cfg, perf, err := e.Eval(pt)
			if err != nil {
				return cfgs, perfs, err
			}
			cfgs = append(cfgs, cfg)
			perfs = append(perfs, perf)
		}
		return cfgs, perfs, nil
	}

	// Snap everything and find the configurations that need measuring, in
	// first-occurrence order.
	cfgs := make([]Config, len(pts))
	need := make([]Config, 0, len(pts))
	seen := map[string]bool{}
	for i, pt := range pts {
		cfgs[i] = e.Space.Snap(pt)
		key := cfgs[i].Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		if perf, ok := e.cache[key]; !ok {
			need = append(need, cfgs[i])
		} else {
			e.hits++
			emit(e.Tracer, Event{Type: EventEval, Index: -1, Config: cfgs[i].Clone(), Perf: perf, Cached: true})
		}
	}

	// Budget: only the first `allowed` missing configurations get measured.
	allowed := len(need)
	truncated := false
	if e.MaxEvals > 0 {
		remaining := e.MaxEvals - len(e.trace)
		if remaining < allowed {
			allowed, truncated = remaining, true
		}
		if allowed < 0 {
			allowed = 0
		}
	}
	measured := make([]float64, allowed)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < allowed; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			measured[i] = e.Objective.Measure(need[i])
		}(i)
	}
	wg.Wait()

	// Commit in input order. Tracer events follow the commit order — not
	// the (nondeterministic) measurement completion order — so the event
	// stream stays deterministic under parallel evaluation.
	for i := 0; i < allowed; i++ {
		cfg := need[i]
		e.cache[cfg.Key()] = measured[i]
		e.trace = append(e.trace, Evaluation{Index: len(e.trace), Config: cfg.Clone(), Perf: measured[i]})
		emit(e.Tracer, Event{Type: EventEval, Index: len(e.trace) - 1, Config: cfg.Clone(), Perf: measured[i]})
	}

	// Assemble results for the longest answerable prefix.
	outC := make([]Config, 0, len(pts))
	outP := make([]float64, 0, len(pts))
	for _, cfg := range cfgs {
		perf, ok := e.cache[cfg.Key()]
		if !ok {
			return outC, outP, ErrBudget
		}
		outC = append(outC, cfg)
		outP = append(outP, perf)
	}
	if truncated {
		return outC, outP, ErrBudget
	}
	return outC, outP, nil
}
