package search

import (
	"math/big"
	"testing"
	"testing/quick"
)

func smallSpace(t testing.TB) *Space {
	t.Helper()
	return MustSpace(
		Param{Name: "a", Min: 0, Max: 10, Step: 2, Default: 4},
		Param{Name: "b", Min: 1, Max: 5, Step: 1, Default: 3},
	)
}

func TestParamValidate(t *testing.T) {
	tests := []struct {
		name  string
		p     Param
		valid bool
	}{
		{"ok", Param{Name: "x", Min: 0, Max: 10, Step: 1, Default: 5}, true},
		{"empty name", Param{Min: 0, Max: 10, Step: 1, Default: 5}, false},
		{"zero step", Param{Name: "x", Min: 0, Max: 10, Step: 0, Default: 5}, false},
		{"negative step", Param{Name: "x", Min: 0, Max: 10, Step: -1, Default: 5}, false},
		{"inverted range", Param{Name: "x", Min: 10, Max: 0, Step: 1, Default: 5}, false},
		{"default below", Param{Name: "x", Min: 0, Max: 10, Step: 1, Default: -1}, false},
		{"default above", Param{Name: "x", Min: 0, Max: 10, Step: 1, Default: 11}, false},
		{"single value", Param{Name: "x", Min: 5, Max: 5, Step: 1, Default: 5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err == nil) != tt.valid {
				t.Errorf("Validate() err = %v, valid = %v", err, tt.valid)
			}
		})
	}
}

func TestParamNumValuesAndValues(t *testing.T) {
	p := Param{Name: "x", Min: 0, Max: 10, Step: 3, Default: 0}
	if got := p.NumValues(); got != 4 {
		t.Errorf("NumValues = %d, want 4 (0,3,6,9)", got)
	}
	vals := p.Values()
	want := []int{0, 3, 6, 9}
	if len(vals) != len(want) {
		t.Fatalf("Values = %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vals, want)
		}
	}
}

func TestParamSnap(t *testing.T) {
	p := Param{Name: "x", Min: 0, Max: 10, Step: 2, Default: 0}
	tests := []struct {
		in   float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.9, 0}, {1.1, 2}, {5, 6}, {9.3, 10}, {10, 10}, {99, 10},
	}
	for _, tt := range tests {
		if got := p.Snap(tt.in); got != tt.want {
			t.Errorf("Snap(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestParamSnapStaysOnGridProperty(t *testing.T) {
	p := Param{Name: "x", Min: -7, Max: 23, Step: 3, Default: -7}
	f := func(x float64) bool {
		v := p.Snap(x)
		return v >= p.Min && v <= p.Max && (v-p.Min)%p.Step == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParamNormalize(t *testing.T) {
	p := Param{Name: "x", Min: 10, Max: 20, Step: 1, Default: 10}
	if got := p.Normalize(15); got != 0.5 {
		t.Errorf("Normalize(15) = %v, want 0.5", got)
	}
	deg := Param{Name: "y", Min: 5, Max: 5, Step: 1, Default: 5}
	if got := deg.Normalize(5); got != 0 {
		t.Errorf("degenerate Normalize = %v, want 0", got)
	}
}

func TestNewSpaceErrors(t *testing.T) {
	if _, err := NewSpace(); err == nil {
		t.Error("empty space did not error")
	}
	if _, err := NewSpace(Param{Name: "x", Min: 0, Max: 1, Step: 0, Default: 0}); err == nil {
		t.Error("invalid param did not error")
	}
	dup := Param{Name: "x", Min: 0, Max: 1, Step: 1, Default: 0}
	if _, err := NewSpace(dup, dup); err == nil {
		t.Error("duplicate names did not error")
	}
}

func TestSpaceSize(t *testing.T) {
	s := smallSpace(t)
	// a has 6 values (0,2,4,6,8,10), b has 5.
	if got := s.Size(); got.Cmp(big.NewInt(30)) != 0 {
		t.Errorf("Size = %v, want 30", got)
	}
}

func TestSpaceSizeHuge(t *testing.T) {
	// The paper's motivating example: 1000 binary parameters = 2^1000.
	params := make([]Param, 1000)
	for i := range params {
		params[i] = Param{Name: "p" + string(rune('a'+i%26)) + itoa(i), Min: 0, Max: 1, Step: 1, Default: 0}
	}
	s := MustSpace(params...)
	want := new(big.Int).Lsh(big.NewInt(1), 1000)
	if s.Size().Cmp(want) != 0 {
		t.Errorf("Size of 1000 binary params != 2^1000")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf []byte
	for i > 0 {
		buf = append([]byte{byte('0' + i%10)}, buf...)
		i /= 10
	}
	return string(buf)
}

func TestDefaultConfigAndContains(t *testing.T) {
	s := smallSpace(t)
	def := s.DefaultConfig()
	if !def.Equal(Config{4, 3}) {
		t.Errorf("DefaultConfig = %v, want [4 3]", def)
	}
	if !s.Contains(def) {
		t.Error("space does not contain its default config")
	}
	if s.Contains(Config{5, 3}) {
		t.Error("off-grid config reported as contained (5 not multiple of step 2)")
	}
	if s.Contains(Config{0, 0}) {
		t.Error("below-min config reported as contained")
	}
	if s.Contains(Config{0}) {
		t.Error("wrong-dim config reported as contained")
	}
}

func TestSnapAndContinuous(t *testing.T) {
	s := smallSpace(t)
	cfg := s.Snap([]float64{3.2, 4.7})
	if !cfg.Equal(Config{4, 5}) {
		t.Errorf("Snap = %v, want [4 5]", cfg)
	}
	pt := s.Continuous(cfg)
	if pt[0] != 4 || pt[1] != 5 {
		t.Errorf("Continuous = %v", pt)
	}
}

func TestNormalized(t *testing.T) {
	s := smallSpace(t)
	n := s.Normalized(Config{5, 3})
	if n[0] != 0.5 || n[1] != 0.5 {
		t.Errorf("Normalized = %v, want [0.5 0.5]", n)
	}
}

func TestNamesAndIndex(t *testing.T) {
	s := smallSpace(t)
	names := s.Names()
	if names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if s.Index("b") != 1 {
		t.Errorf("Index(b) = %d, want 1", s.Index("b"))
	}
	if s.Index("zzz") != -1 {
		t.Errorf("Index(zzz) = %d, want -1", s.Index("zzz"))
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{1, -2, 3}
	clone := c.Clone()
	clone[0] = 99
	if c[0] != 1 {
		t.Error("Clone shares storage")
	}
	if !c.Equal(Config{1, -2, 3}) {
		t.Error("Equal false negative")
	}
	if c.Equal(Config{1, -2}) {
		t.Error("Equal true for different lengths")
	}
	if c.Key() != "1,-2,3" {
		t.Errorf("Key = %q, want 1,-2,3", c.Key())
	}
}

func TestSubspaceEmbedding(t *testing.T) {
	s := MustSpace(
		Param{Name: "a", Min: 0, Max: 10, Step: 1, Default: 5},
		Param{Name: "b", Min: 0, Max: 10, Step: 1, Default: 6},
		Param{Name: "c", Min: 0, Max: 10, Step: 1, Default: 7},
	)
	sub, embed, err := s.Subspace([]int{2, 0}, s.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dim() != 2 || sub.Params[0].Name != "c" || sub.Params[1].Name != "a" {
		t.Fatalf("Subspace params = %v", sub.Names())
	}
	full := embed(Config{9, 1})
	if !full.Equal(Config{1, 6, 9}) {
		t.Errorf("embed = %v, want [1 6 9]", full)
	}
}

func TestSubspaceErrors(t *testing.T) {
	s := smallSpace(t)
	base := s.DefaultConfig()
	if _, _, err := s.Subspace(nil, base); err == nil {
		t.Error("empty indices did not error")
	}
	if _, _, err := s.Subspace([]int{0, 0}, base); err == nil {
		t.Error("duplicate indices did not error")
	}
	if _, _, err := s.Subspace([]int{5}, base); err == nil {
		t.Error("out-of-range index did not error")
	}
	if _, _, err := s.Subspace([]int{0}, Config{1}); err == nil {
		t.Error("short base did not error")
	}
}

func TestEachConfigEnumeratesAll(t *testing.T) {
	s := smallSpace(t)
	seen := map[string]bool{}
	s.EachConfig(func(c Config) bool {
		if seen[c.Key()] {
			t.Fatalf("duplicate config %v", c)
		}
		if !s.Contains(c) {
			t.Fatalf("enumerated config %v outside space", c)
		}
		seen[c.Key()] = true
		return true
	})
	if len(seen) != 30 {
		t.Errorf("enumerated %d configs, want 30", len(seen))
	}
}

func TestEachConfigEarlyStop(t *testing.T) {
	s := smallSpace(t)
	n := 0
	s.EachConfig(func(c Config) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("visited %d configs after early stop, want 7", n)
	}
}
