package search

import (
	"fmt"
)

// NelderMeadOptions configures the simplex search.
type NelderMeadOptions struct {
	// Init selects the initial simplex strategy. Defaults to ExtremeInit
	// (the original Active Harmony behaviour) when nil.
	Init InitStrategy
	// Direction states whether the objective is maximized or minimized.
	Direction Direction
	// MaxEvals bounds the number of distinct configuration measurements.
	// Defaults to 200 when zero.
	MaxEvals int
	// RelTol terminates the search when the relative performance spread of
	// the simplex falls below it. Defaults to 1e-3 when zero.
	RelTol float64
	// MaxStall terminates after this many consecutive iterations without
	// improvement of the best vertex. Defaults to 4*dim when zero.
	MaxStall int
	// Parallel, when > 1, measures the embarrassingly parallel phases (the
	// initial simplex and shrink steps) with this many concurrent
	// objective calls and parallelizes the main loop. Narrow spaces
	// (effective multi-point width 1 — see PBest) turn each iteration into
	// a single speculative measurement round: the reflection, expansion
	// and both contraction candidates are measured concurrently (see
	// Evaluator.Speculate) and only the sequentially probed ones are
	// committed, so results — best configuration, trace, budget
	// accounting — are identical to the sequential kernel's for
	// deterministic objectives; only wall-clock changes. Wider spaces
	// switch to the multi-point simplex, which updates several vertices
	// per concurrent round (deterministic, but a different trajectory).
	// The objective must be safe for concurrent use either way (see
	// Synchronized).
	Parallel int
	// PBest controls the multi-point simplex width: how many of the worst
	// vertices each parallel iteration updates concurrently, after Lee &
	// Wiswall's parallel Nelder–Mead. 0 derives the width as Parallel/2 —
	// each vertex's reflection and contraction candidates travel together
	// in one round, so Parallel/2 vertices fill the window — capped at
	// dim/2 so the reflection centroid stays informative; 1 forces the
	// trajectory-preserving speculative kernel regardless of Parallel;
	// larger values raise ambition up to the same dim/2 cap. Sequential
	// sessions (Parallel <= 1) always run the trajectory-identical kernel.
	PBest int
	// Restarts re-runs the search this many additional times after it
	// converges, each restart building a fresh distributed simplex centred
	// on the best point found so far at half the previous scale. Restarts
	// share the evaluation budget and cache; they help escape a prematurely
	// collapsed simplex at no cost when the first run already used the
	// budget.
	Restarts int
	// ExtraRestart, when non-nil, is polled once the search (including the
	// planned Restarts) has converged with budget remaining; returning true
	// funds one more reduced-scale restart around the incumbent best, then
	// the hook is polled again. The server's control plane wires an
	// operator's re-tune request here, so a live session can be steered
	// back into exploration without a protocol change. Each extra restart
	// is announced by an EventPhase "retune" on the trace stream.
	ExtraRestart func() bool

	// Standard Nelder–Mead coefficients; zero values take the textbook
	// defaults (reflection 1, expansion 2, contraction 0.5, shrink 0.5).
	Reflection  float64
	Expansion   float64
	Contraction float64
	Shrink      float64

	// Tracer, when non-nil, receives an EventSimplex for every operation
	// (reflect/expand/contract/shrink), an EventConverge for the
	// termination decision, and an EventPhase per restart. Evaluation
	// events come from the Evaluator's own Tracer (NelderMead wires the
	// same tracer into the evaluator it creates; with
	// NelderMeadWithEvaluator the caller controls both). Nil costs one
	// branch per emission site.
	Tracer Tracer
}

func (o *NelderMeadOptions) fill(dim int) {
	if o.Init == nil {
		o.Init = ExtremeInit{}
	}
	if o.MaxEvals == 0 {
		o.MaxEvals = 200
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-3
	}
	if o.MaxStall == 0 {
		o.MaxStall = 4 * dim
	}
	if o.Reflection == 0 {
		o.Reflection = 1
	}
	if o.Expansion == 0 {
		o.Expansion = 2
	}
	if o.Contraction == 0 {
		o.Contraction = 0.5
	}
	if o.Shrink == 0 {
		o.Shrink = 0.5
	}
}

// Result summarizes a tuning session.
type Result struct {
	BestConfig Config
	BestPerf   float64
	Trace      Trace
	Evals      int // number of real measurements (explorations)
	Converged  bool
}

// vertex pairs a continuous simplex point with its measured performance.
type vertex struct {
	pt   []float64
	perf float64
}

// sortVertices orders a simplex best-to-worst under better. It is a stable
// insertion sort: the simplex has dim+1 vertices (a handful), and the kernel
// re-sorts every iteration, so avoiding sort.SliceStable's per-call closure
// and reflection swapper keeps the iteration allocation-free.
func sortVertices(verts []vertex, better func(a, b float64) bool) {
	for i := 1; i < len(verts); i++ {
		v := verts[i]
		j := i - 1
		for j >= 0 && better(v.perf, verts[j].perf) {
			verts[j+1] = verts[j]
			j--
		}
		verts[j+1] = v
	}
}

// NelderMead runs the adapted simplex search over the space.
//
// The algorithm is Nelder & Mead (1965) with the paper's discrete
// adaptation: every probe point is evaluated at the nearest integer grid
// configuration (§2). Because the space is bounded, probe points are clamped
// into the box before snapping.
func NelderMead(space *Space, obj Objective, opts NelderMeadOptions) (*Result, error) {
	dim := space.Dim()
	opts.fill(dim)
	ev := NewEvaluator(space, obj)
	ev.MaxEvals = opts.MaxEvals
	ev.Tracer = opts.Tracer
	return nelderMeadWithRestarts(space, ev, opts)
}

// NelderMeadWithEvaluator runs the search against a caller-managed
// evaluator, letting callers pre-seed historical measurements (§4.2) or
// share a budget across stages.
func NelderMeadWithEvaluator(space *Space, ev *Evaluator, opts NelderMeadOptions) (*Result, error) {
	opts.fill(space.Dim())
	return nelderMeadWithRestarts(space, ev, opts)
}

// nelderMeadWithRestarts runs the kernel, then optionally restarts from the
// best point found with progressively tighter fresh simplexes, sharing the
// evaluator (budget, cache and trace accumulate across restarts).
func nelderMeadWithRestarts(space *Space, ev *Evaluator, opts NelderMeadOptions) (*Result, error) {
	res, err := nelderMead(space, ev, opts)
	if err != nil {
		return nil, err
	}
	scale := 0.5
	for r := 0; r < opts.Restarts; r++ {
		if !res.Converged || len(res.BestConfig) == 0 {
			break // out of budget (or nothing measured): restarting is futile
		}
		emit(opts.Tracer, Event{Type: EventPhase, Op: "restart", Iter: r + 1, Perf: res.BestPerf})
		restartOpts := opts
		restartOpts.Init = scaledInit{
			center: space.Continuous(res.BestConfig),
			frac:   scale,
		}
		next, err := nelderMead(space, ev, restartOpts)
		if err != nil {
			return nil, err
		}
		res = next // the shared trace already spans all restarts
		scale /= 2
	}
	// Operator-driven extra restarts: polled only after convergence, so a
	// re-tune request arriving mid-run takes effect at the next natural
	// stopping point. Budget exhaustion ends the loop exactly like the
	// planned restarts above.
	for opts.ExtraRestart != nil && res.Converged && len(res.BestConfig) > 0 {
		if !opts.ExtraRestart() {
			break
		}
		emit(opts.Tracer, Event{Type: EventPhase, Op: "retune", Perf: res.BestPerf})
		restartOpts := opts
		restartOpts.Init = scaledInit{
			center: space.Continuous(res.BestConfig),
			frac:   scale,
		}
		next, err := nelderMead(space, ev, restartOpts)
		if err != nil {
			return nil, err
		}
		res = next
		scale /= 2
	}
	return res, nil
}

// scaledInit builds a distributed simplex spanning frac of each parameter's
// range, centred on a given point (used by restarts).
type scaledInit struct {
	center []float64
	frac   float64
}

// Name implements InitStrategy.
func (s scaledInit) Name() string { return "scaled-distributed" }

// Initial implements InitStrategy.
func (s scaledInit) Initial(space *Space) [][]float64 {
	dim := space.Dim()
	n := dim + 1
	pts := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j, p := range space.Params {
			span := float64(p.Max-p.Min) * s.frac
			offset := (float64((i+j)%n)+0.5)/float64(n) - 0.5
			v[j] = s.center[j] + span*offset
		}
		pts[i] = clampPoint(space, v)
	}
	return pts
}

func nelderMead(space *Space, ev *Evaluator, opts NelderMeadOptions) (*Result, error) {
	dim := space.Dim()
	if p := opts.pbest(dim); p > 1 {
		return nelderMeadMultiPoint(space, ev, opts, p)
	}
	dir := opts.Direction

	initPts := opts.Init.Initial(space)
	if len(initPts) != dim+1 {
		return nil, fmt.Errorf("search: init strategy %q produced %d vertices, want %d",
			opts.Init.Name(), len(initPts), dim+1)
	}

	clamped := make([][]float64, len(initPts))
	for i, pt := range initPts {
		clamped[i] = clampPoint(space, pt)
	}
	_, initPerfs, err := ev.EvalBatch(clamped, opts.Parallel)
	budgetHit := err == ErrBudget
	if err != nil && !budgetHit {
		return nil, err
	}
	verts := make([]vertex, 0, dim+1)
	for i, perf := range initPerfs {
		verts = append(verts, vertex{pt: clamped[i], perf: perf})
	}

	result := func(converged bool) *Result {
		tr := ev.Trace()
		if len(tr) == 0 {
			return &Result{Trace: tr, Evals: 0, Converged: converged}
		}
		best := tr.Best(dir)
		return &Result{
			BestConfig: best.Config.Clone(),
			BestPerf:   best.Perf,
			Trace:      tr,
			Evals:      ev.Count(),
			Converged:  converged,
		}
	}
	// finish records the kernel's termination decision before returning.
	finish := func(reason string, iter int, converged bool) *Result {
		res := result(converged)
		emit(opts.Tracer, Event{
			Type: EventConverge, Op: reason, Iter: iter,
			Perf: res.BestPerf, Config: res.BestConfig,
			Note: fmt.Sprintf("evals=%d", res.Evals),
		})
		return res
	}
	if budgetHit || len(verts) < dim+1 {
		return finish("init_budget", 0, false), nil
	}

	// worse(a, b) orders vertices from best to worst under dir.
	better := func(a, b float64) bool { return dir.Better(a, b) }
	sortVerts := func() { sortVertices(verts, better) }
	sortVerts()

	probe := func(spec *Speculation, pt []float64) (float64, bool) {
		pt = clampPoint(space, pt)
		_, perf, err := ev.EvalSpeculated(pt, spec)
		if err != nil {
			return 0, false
		}
		return perf, true
	}

	// step records one simplex operation for the tracer.
	step := func(op string, iter int, perf float64, note string) {
		emit(opts.Tracer, Event{Type: EventSimplex, Op: op, Iter: iter, Perf: perf, Note: note})
	}

	stall := 0
	prevBest := verts[0].perf
	for iter := 0; ; iter++ {
		// Convergence: relative spread between best and worst vertex.
		bestV, worstV := verts[0].perf, verts[len(verts)-1].perf
		spread := abs(bestV - worstV)
		scale := abs(bestV) + abs(worstV)
		if scale > 0 && spread/scale < opts.RelTol {
			return finish("reltol", iter, true), nil
		}
		if stall >= opts.MaxStall {
			return finish("stall", iter, true), nil
		}

		// Centroid of all but the worst vertex.
		centroid := make([]float64, dim)
		for _, v := range verts[:len(verts)-1] {
			for j := range centroid {
				centroid[j] += v.pt[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(len(verts) - 1)
		}
		worst := verts[len(verts)-1]

		move := func(coef float64) []float64 {
			pt := make([]float64, dim)
			for j := range pt {
				pt[j] = centroid[j] + coef*(centroid[j]-worst.pt[j])
			}
			return pt
		}

		// All candidate points one iteration can probe are known before any
		// measurement: the reflection, the expansion, and both contractions.
		// With a parallel budget the kernel measures them speculatively as
		// one concurrent round, then commits only the ones the sequential
		// logic below actually probes — in the sequential order — so the
		// committed trace is identical to the sequential kernel's while the
		// iteration's wall-clock shrinks to one measurement round.
		refl := move(opts.Reflection)
		exp := move(opts.Reflection * opts.Expansion)
		contrOutPt := move(opts.Reflection * opts.Contraction)
		contrInPt := move(-opts.Contraction)
		var spec *Speculation
		if opts.Parallel > 1 {
			spec = ev.Speculate([][]float64{
				clampPoint(space, refl), clampPoint(space, exp),
				clampPoint(space, contrOutPt), clampPoint(space, contrInPt),
			}, opts.Parallel)
		}

		// Reflection.
		rPerf, ok := probe(spec, refl)
		if !ok {
			return finish("budget", iter, false), nil
		}
		switch {
		case better(rPerf, verts[0].perf):
			// Expansion.
			step(OpReflect, iter, rPerf, "improved best; trying expansion")
			ePerf, ok := probe(spec, exp)
			if !ok {
				return finish("budget", iter, false), nil
			}
			if better(ePerf, rPerf) {
				step(OpExpand, iter, ePerf, "accepted")
				verts[len(verts)-1] = vertex{pt: clampPoint(space, exp), perf: ePerf}
			} else {
				step(OpExpand, iter, ePerf, "rejected; kept reflection")
				verts[len(verts)-1] = vertex{pt: clampPoint(space, refl), perf: rPerf}
			}
		case better(rPerf, verts[len(verts)-2].perf):
			// Better than the second-worst: accept the reflection.
			step(OpReflect, iter, rPerf, "accepted")
			verts[len(verts)-1] = vertex{pt: clampPoint(space, refl), perf: rPerf}
		default:
			// Contraction (outside if the reflection improved on the worst,
			// inside otherwise).
			step(OpReflect, iter, rPerf, "rejected; contracting")
			var contr []float64
			contrOp := OpContractIn
			if better(rPerf, worst.perf) {
				contr = contrOutPt
				contrOp = OpContractOut
			} else {
				contr = contrInPt
			}
			cPerf, ok := probe(spec, contr)
			if !ok {
				return finish("budget", iter, false), nil
			}
			if better(cPerf, worst.perf) {
				step(contrOp, iter, cPerf, "accepted")
				verts[len(verts)-1] = vertex{pt: clampPoint(space, contr), perf: cPerf}
			} else {
				step(contrOp, iter, cPerf, "rejected; shrinking")
				// Shrink every vertex toward the best — an embarrassingly
				// parallel batch.
				bestPt := verts[0].pt
				shrunk := make([][]float64, 0, len(verts)-1)
				for i := 1; i < len(verts); i++ {
					for j := range verts[i].pt {
						verts[i].pt[j] = bestPt[j] + opts.Shrink*(verts[i].pt[j]-bestPt[j])
					}
					shrunk = append(shrunk, verts[i].pt)
				}
				_, perfs, err := ev.EvalBatch(shrunk, opts.Parallel)
				if err != nil || len(perfs) < len(shrunk) {
					return finish("budget", iter, false), nil
				}
				for i := 1; i < len(verts); i++ {
					verts[i].perf = perfs[i-1]
				}
				step(OpShrink, iter, verts[0].perf, fmt.Sprintf("re-measured %d vertices", len(shrunk)))
			}
		}
		sortVerts()
		if better(verts[0].perf, prevBest) {
			prevBest = verts[0].perf
			stall = 0
		} else {
			stall++
		}
	}
}

func clampPoint(space *Space, pt []float64) []float64 {
	out := make([]float64, len(pt))
	for i, p := range space.Params {
		v := pt[i]
		if v < float64(p.Min) {
			v = float64(p.Min)
		}
		if v > float64(p.Max) {
			v = float64(p.Max)
		}
		out[i] = v
	}
	return out
}
