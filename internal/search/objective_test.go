package search

import (
	"errors"
	"testing"
)

func TestDirectionBetter(t *testing.T) {
	if !Maximize.Better(2, 1) || Maximize.Better(1, 2) || Maximize.Better(1, 1) {
		t.Error("Maximize.Better wrong")
	}
	if !Minimize.Better(1, 2) || Minimize.Better(2, 1) || Minimize.Better(1, 1) {
		t.Error("Minimize.Better wrong")
	}
}

func TestTraceBestWorst(t *testing.T) {
	tr := Trace{
		{Index: 0, Config: Config{1}, Perf: 5},
		{Index: 1, Config: Config{2}, Perf: 9},
		{Index: 2, Config: Config{3}, Perf: 2},
	}
	if got := tr.Best(Maximize); got.Perf != 9 {
		t.Errorf("Best(Maximize) = %v, want 9", got.Perf)
	}
	if got := tr.Best(Minimize); got.Perf != 2 {
		t.Errorf("Best(Minimize) = %v, want 2", got.Perf)
	}
	if got := tr.Worst(Maximize); got.Perf != 2 {
		t.Errorf("Worst(Maximize) = %v, want 2", got.Perf)
	}
	if got := tr.Worst(Minimize); got.Perf != 9 {
		t.Errorf("Worst(Minimize) = %v, want 9", got.Perf)
	}
}

func TestTraceBestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Best on empty trace did not panic")
		}
	}()
	Trace{}.Best(Maximize)
}

func TestConvergenceIteration(t *testing.T) {
	tr := Trace{
		{Perf: 10}, {Perf: 40}, {Perf: 90}, {Perf: 100}, {Perf: 99}, {Perf: 100},
	}
	// Final best is 100; within 1% from iteration 3 (perf 100 at index 3).
	if got := tr.ConvergenceIteration(Maximize, 0.01); got != 4 {
		t.Errorf("ConvergenceIteration = %d, want 4", got)
	}
	// With a loose 15% tolerance, 90 at index 2 already qualifies.
	if got := tr.ConvergenceIteration(Maximize, 0.15); got != 3 {
		t.Errorf("loose ConvergenceIteration = %d, want 3", got)
	}
	if got := (Trace{}).ConvergenceIteration(Maximize, 0.01); got != 0 {
		t.Errorf("empty ConvergenceIteration = %d, want 0", got)
	}
}

func TestConvergenceIterationMinimize(t *testing.T) {
	tr := Trace{{Perf: 100}, {Perf: 20}, {Perf: 10}, {Perf: 10}}
	if got := tr.ConvergenceIteration(Minimize, 0.01); got != 3 {
		t.Errorf("ConvergenceIteration = %d, want 3", got)
	}
}

func TestBadIterations(t *testing.T) {
	tr := Trace{{Perf: 10}, {Perf: 55}, {Perf: 90}, {Perf: 100}, {Perf: 30}}
	// Below 60% of final best (60): perfs 10, 55, 30 → 3 bad iterations.
	if got := tr.BadIterations(Maximize, 0.6); got != 3 {
		t.Errorf("BadIterations = %d, want 3", got)
	}
	if got := (Trace{}).BadIterations(Maximize, 0.6); got != 0 {
		t.Errorf("empty BadIterations = %d, want 0", got)
	}
}

func TestBadIterationsMinimize(t *testing.T) {
	tr := Trace{{Perf: 100}, {Perf: 12}, {Perf: 10}}
	// Best is 10; worse than 10/0.5 = 20: only the 100.
	if got := tr.BadIterations(Minimize, 0.5); got != 1 {
		t.Errorf("BadIterations = %d, want 1", got)
	}
}

func TestInitialWindow(t *testing.T) {
	tr := Trace{{Perf: 1}, {Perf: 2}, {Perf: 3}}
	if got := tr.InitialWindow(2); len(got) != 2 {
		t.Errorf("InitialWindow(2) len = %d", len(got))
	}
	if got := tr.InitialWindow(99); len(got) != 3 {
		t.Errorf("InitialWindow(99) len = %d", len(got))
	}
}

func TestEvaluatorCachingAndTrace(t *testing.T) {
	s := smallSpace(t)
	calls := 0
	ev := NewEvaluator(s, ObjectiveFunc(func(c Config) float64 {
		calls++
		return float64(c[0] + c[1])
	}))
	cfg, perf, err := ev.Eval([]float64{4.1, 3.2})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Equal(Config{4, 3}) || perf != 7 {
		t.Fatalf("Eval = %v %v", cfg, perf)
	}
	// Same snapped config: cache hit, no extra call, no trace growth.
	_, _, err = ev.Eval([]float64{3.9, 2.8})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (cache hit expected)", calls)
	}
	if ev.Count() != 1 {
		t.Errorf("Count = %d, want 1", ev.Count())
	}
	if perf, ok := ev.Known(Config{4, 3}); !ok || perf != 7 {
		t.Errorf("Known = %v %v", perf, ok)
	}
	if _, ok := ev.Known(Config{0, 1}); ok {
		t.Error("Known true for unmeasured config")
	}
}

func TestEvaluatorBudget(t *testing.T) {
	s := smallSpace(t)
	ev := NewEvaluator(s, ObjectiveFunc(func(c Config) float64 { return 1 }))
	ev.MaxEvals = 2
	mustEval := func(a, b int) {
		if _, _, err := ev.EvalConfig(Config{a, b}); err != nil {
			t.Fatal(err)
		}
	}
	mustEval(0, 1)
	mustEval(2, 1)
	if _, _, err := ev.EvalConfig(Config{4, 1}); !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	// Cached configs are still free after the budget is gone.
	if _, _, err := ev.EvalConfig(Config{0, 1}); err != nil {
		t.Errorf("cached eval after budget errored: %v", err)
	}
}

func TestEvaluatorRejectsOffGrid(t *testing.T) {
	s := smallSpace(t)
	ev := NewEvaluator(s, ObjectiveFunc(func(c Config) float64 { return 1 }))
	if _, _, err := ev.EvalConfig(Config{5, 1}); err == nil {
		t.Error("off-grid config accepted")
	}
	if _, _, err := ev.EvalConfig(Config{0}); err == nil {
		t.Error("wrong-dimension config accepted")
	}
}

func TestEvaluatorSeed(t *testing.T) {
	s := smallSpace(t)
	calls := 0
	ev := NewEvaluator(s, ObjectiveFunc(func(c Config) float64 {
		calls++
		return 0
	}))
	if err := ev.Seed(Config{4, 3}, 42); err != nil {
		t.Fatal(err)
	}
	_, perf, err := ev.EvalConfig(Config{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if perf != 42 || calls != 0 {
		t.Errorf("seeded eval = %v (calls %d), want 42 with 0 calls", perf, calls)
	}
	if err := ev.Seed(Config{5, 3}, 1); err == nil {
		t.Error("off-grid seed accepted")
	}
}

func TestEvaluatorDisableCache(t *testing.T) {
	s := smallSpace(t)
	calls := 0
	ev := NewEvaluator(s, ObjectiveFunc(func(c Config) float64 {
		calls++
		return float64(calls)
	}))
	ev.DisableCache = true
	ev.EvalConfig(Config{0, 1})
	ev.EvalConfig(Config{0, 1})
	if calls != 2 {
		t.Errorf("calls = %d, want 2 with cache disabled", calls)
	}
}

func TestKnownConfigsRoundTrip(t *testing.T) {
	s := MustSpace(Param{Name: "x", Min: -10, Max: 10, Step: 5, Default: 0})
	ev := NewEvaluator(s, ObjectiveFunc(func(c Config) float64 { return float64(c[0]) }))
	ev.EvalConfig(Config{-10})
	ev.EvalConfig(Config{5})
	ev.EvalConfig(Config{0})
	got := ev.KnownConfigs()
	if len(got) != 3 {
		t.Fatalf("KnownConfigs len = %d, want 3", len(got))
	}
	seen := map[string]bool{}
	for _, c := range got {
		seen[c.Key()] = true
		if !s.Contains(c) {
			t.Errorf("KnownConfigs returned off-grid %v", c)
		}
	}
	for _, want := range []string{"-10", "5", "0"} {
		if !seen[want] {
			t.Errorf("KnownConfigs missing %q", want)
		}
	}
}

func TestTracePerfs(t *testing.T) {
	tr := Trace{{Perf: 1.5}, {Perf: 2.5}}
	ps := tr.Perfs()
	if len(ps) != 2 || ps[0] != 1.5 || ps[1] != 2.5 {
		t.Errorf("Perfs = %v", ps)
	}
}
