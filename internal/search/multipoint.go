package search

import (
	"fmt"
)

// polishFrac is the simplex scale (fraction of each parameter's range) of
// the polish phase the multi-point kernel runs with leftover budget after
// its coarse walk converges.
const polishFrac = 0.25

// pbest resolves the effective multi-point width for one simplex iteration:
// how many of the worst vertices are updated concurrently. Sequential
// sessions always get 1. Parallel sessions default to Parallel/2 — each
// vertex consumes two concurrent measurement slots per round (its
// reflection and its inside contraction travel together), so Parallel/2
// vertices fill the window exactly — capped at dim/2 so the reflection
// centroid stays informative. PBest overrides the default: 1 forces the
// trajectory-preserving speculative kernel regardless of window width,
// larger values raise ambition up to the same dim/2 cap.
func (o NelderMeadOptions) pbest(dim int) int {
	if o.Parallel <= 1 {
		return 1
	}
	p := o.PBest
	if p == 0 {
		p = o.Parallel / 2
	}
	if p > dim/2 {
		p = dim / 2
	}
	if p > o.Parallel {
		p = o.Parallel
	}
	if p < 1 {
		p = 1
	}
	return p
}

// nelderMeadMultiPoint is the multi-point parallel simplex (after Lee &
// Wiswall's p-best scheme): each iteration updates the p worst vertices
// concurrently, and — unlike the textbook two-round formulation — measures
// each vertex's reflection AND its inside contraction together in a single
// EvalBatch round. Both candidates are computable from the committed
// simplex before any measurement starts (the contraction does not depend
// on the reflection's outcome, only the choice between them does), so one
// round of 2p concurrent measurements replaces the reflect-then-
// maybe-contract sequence that would otherwise serialize two measurement
// latencies per iteration. Each vertex then takes its reflection when that
// beats the vertex, else its contraction when that does, else keeps its
// place; if no vertex improved the whole simplex shrinks toward the best
// point (one more concurrent batch), mirroring the sequential kernel's
// shrink rule. The simplex re-sorts after every round, so each round's
// centroid reflects all previously committed progress.
//
// The coarse parallel walk trades the sequential kernel's expansion trial
// for round economy, so it converges in fewer, wider steps; whatever
// evaluation budget is left at convergence funds a polish phase — a
// reduced-scale restart on the trajectory-preserving speculative kernel,
// centred on the incumbent best — which recovers the fine local refinement
// the wide walk skips.
//
// Wall-clock per unit of simplex progress drops by roughly p for
// measurement-bound objectives — a round costs one measurement latency and
// commits up to p vertex updates — which is what a pipelined session with a
// wide window buys. The trajectory differs from the sequential kernel's (a
// different — more parallel — walk over the same surface) but is fully
// deterministic for a given width: EvalBatch commits and traces in input
// order, every decision derives from committed values, and the candidate
// order within a round is fixed (worst vertex first, reflection before
// contraction). Narrow spaces never take this path — pbest caps the width
// at dim/2, so 2- and 3-dimensional sessions fall back to the speculative
// kernel whose results are identical to sequential.
func nelderMeadMultiPoint(space *Space, ev *Evaluator, opts NelderMeadOptions, p int) (*Result, error) {
	dim := space.Dim()
	dir := opts.Direction

	initPts := opts.Init.Initial(space)
	if len(initPts) != dim+1 {
		return nil, fmt.Errorf("search: init strategy %q produced %d vertices, want %d",
			opts.Init.Name(), len(initPts), dim+1)
	}
	clamped := make([][]float64, len(initPts))
	for i, pt := range initPts {
		clamped[i] = clampPoint(space, pt)
	}
	_, initPerfs, err := ev.EvalBatch(clamped, opts.Parallel)
	budgetHit := err == ErrBudget
	if err != nil && !budgetHit {
		return nil, err
	}
	verts := make([]vertex, 0, dim+1)
	for i, perf := range initPerfs {
		verts = append(verts, vertex{pt: clamped[i], perf: perf})
	}

	result := func(converged bool) *Result {
		tr := ev.Trace()
		if len(tr) == 0 {
			return &Result{Trace: tr, Evals: 0, Converged: converged}
		}
		best := tr.Best(dir)
		return &Result{
			BestConfig: best.Config.Clone(),
			BestPerf:   best.Perf,
			Trace:      tr,
			Evals:      ev.Count(),
			Converged:  converged,
		}
	}
	finish := func(reason string, iter int, converged bool) *Result {
		res := result(converged)
		emit(opts.Tracer, Event{
			Type: EventConverge, Op: reason, Iter: iter,
			Perf: res.BestPerf, Config: res.BestConfig,
			Note: fmt.Sprintf("evals=%d pbest=%d", res.Evals, p),
		})
		return res
	}
	if budgetHit || len(verts) < dim+1 {
		return finish("init_budget", 0, false), nil
	}

	// converge ends the coarse walk. Leftover budget — the wide walk
	// typically converges in fewer evaluations than the sequential kernel
	// spends — funds a polish restart on the speculative kernel at reduced
	// scale around the incumbent best.
	converge := func(reason string, iter int) (*Result, error) {
		res := finish(reason, iter, true)
		if ev.MaxEvals <= 0 || len(res.BestConfig) == 0 {
			return res, nil
		}
		remaining := ev.MaxEvals - ev.Count()
		if remaining < dim+1 {
			return res, nil
		}
		emit(opts.Tracer, Event{
			Type: EventPhase, Op: "polish", Iter: iter, Perf: res.BestPerf,
			Note: fmt.Sprintf("remaining=%d frac=%v", remaining, polishFrac),
		})
		polishOpts := opts
		polishOpts.PBest = 1 // trajectory-preserving speculative kernel
		polishOpts.Init = scaledInit{center: space.Continuous(res.BestConfig), frac: polishFrac}
		pres, err := nelderMead(space, ev, polishOpts)
		if err != nil {
			return nil, err
		}
		// The coarse walk converged; the polish merely spends what was
		// left, so running out of budget mid-polish is still convergence.
		pres.Converged = true
		return pres, nil
	}

	better := func(a, b float64) bool { return dir.Better(a, b) }
	sortVerts := func() { sortVertices(verts, better) }
	sortVerts()

	step := func(op string, iter int, perf float64, note string) {
		emit(opts.Tracer, Event{Type: EventSimplex, Op: op, Iter: iter, Perf: perf, Note: note})
	}

	stall := 0
	prevBest := verts[0].perf
	for iter := 0; ; iter++ {
		bestV, worstV := verts[0].perf, verts[len(verts)-1].perf
		spread := abs(bestV - worstV)
		scale := abs(bestV) + abs(worstV)
		if scale > 0 && spread/scale < opts.RelTol {
			return converge("reltol", iter)
		}
		if stall >= opts.MaxStall {
			return converge("stall", iter)
		}

		// Centroid of everything except the p vertices being updated.
		keep := len(verts) - p
		centroid := make([]float64, dim)
		for _, v := range verts[:keep] {
			for j := range centroid {
				centroid[j] += v.pt[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(keep)
		}

		// move computes centroid + coef*(centroid - from), clamped.
		move := func(from []float64, coef float64) []float64 {
			pt := make([]float64, dim)
			for j := range pt {
				pt[j] = centroid[j] + coef*(centroid[j]-from[j])
			}
			return clampPoint(space, pt)
		}

		// One concurrent round measures every candidate the iteration can
		// commit: the reflection and the inside contraction of each of the
		// p worst vertices, in a fixed order (worst first, reflection
		// before contraction) so the committed trace is deterministic.
		reflPts := make([][]float64, p)
		contrPts := make([][]float64, p)
		batch := make([][]float64, 0, 2*p)
		for j := 0; j < p; j++ {
			w := verts[len(verts)-1-j]
			reflPts[j] = move(w.pt, opts.Reflection)
			contrPts[j] = move(w.pt, -opts.Contraction)
			batch = append(batch, reflPts[j], contrPts[j])
		}
		_, perfs, err := ev.EvalBatch(batch, opts.Parallel)
		if err != nil || len(perfs) < len(batch) {
			return finish("budget", iter, false), nil
		}

		// Commit the p updates: reflection if it beats the vertex, else
		// contraction if that does, else the vertex stays.
		improved := false
		for j := 0; j < p; j++ {
			idx := len(verts) - 1 - j
			w := verts[idx]
			rPerf, cPerf := perfs[2*j], perfs[2*j+1]
			switch {
			case better(rPerf, w.perf):
				step(OpReflect, iter, rPerf, fmt.Sprintf("vertex %d accepted", idx))
				verts[idx] = vertex{pt: reflPts[j], perf: rPerf}
				improved = true
			case better(cPerf, w.perf):
				step(OpContractIn, iter, cPerf, fmt.Sprintf("vertex %d accepted", idx))
				verts[idx] = vertex{pt: contrPts[j], perf: cPerf}
				improved = true
			default:
				step(OpContractIn, iter, cPerf, fmt.Sprintf("vertex %d rejected", idx))
			}
		}

		if !improved {
			// Every update failed: shrink the whole simplex toward the best
			// vertex — one more concurrent batch.
			bestPt := verts[0].pt
			shrunk := make([][]float64, 0, len(verts)-1)
			for i := 1; i < len(verts); i++ {
				for j := range verts[i].pt {
					verts[i].pt[j] = bestPt[j] + opts.Shrink*(verts[i].pt[j]-bestPt[j])
				}
				shrunk = append(shrunk, verts[i].pt)
			}
			_, perfs, err := ev.EvalBatch(shrunk, opts.Parallel)
			if err != nil || len(perfs) < len(shrunk) {
				return finish("budget", iter, false), nil
			}
			for i := 1; i < len(verts); i++ {
				verts[i].perf = perfs[i-1]
			}
			step(OpShrink, iter, verts[0].perf, fmt.Sprintf("re-measured %d vertices", len(shrunk)))
		}

		sortVerts()
		if better(verts[0].perf, prevBest) {
			prevBest = verts[0].perf
			stall = 0
		} else {
			stall++
		}
	}
}
