package search

// InitStrategy produces the dim+1 vertices of the initial simplex.
//
// The paper's §4.1 contrasts the original Active Harmony initialization,
// which probes parameter extremes (Figure 1a), with the improved strategy
// that spreads the initial configurations evenly through the interior of
// the search space (Figure 1b).
type InitStrategy interface {
	// Initial returns dim+1 continuous points inside the space's bounds.
	Initial(space *Space) [][]float64
	// Name identifies the strategy in reports and benches.
	Name() string
}

// ExtremeInit reproduces the original Active Harmony initial exploration:
// vertex 0 sits at the all-minimum corner and vertex i+1 moves parameter i
// to its maximum. Every initial configuration therefore tests parameter
// extremes, which the paper identifies as the cause of the initial bad
// performance oscillation.
type ExtremeInit struct{}

// Name implements InitStrategy.
func (ExtremeInit) Name() string { return "extreme" }

// Initial implements InitStrategy.
func (ExtremeInit) Initial(space *Space) [][]float64 {
	dim := space.Dim()
	pts := make([][]float64, dim+1)
	base := make([]float64, dim)
	for j, p := range space.Params {
		base[j] = float64(p.Min)
	}
	pts[0] = append([]float64(nil), base...)
	for i := 0; i < dim; i++ {
		v := append([]float64(nil), base...)
		v[i] = float64(space.Params[i].Max)
		pts[i+1] = v
	}
	return pts
}

// DistributedInit implements the improved search refinement: the dim+1
// initial configurations are spread evenly through the whole space, with
// each parameter stepping 1/(dim+1) of its range per exploration, offset by
// half a cell to stay away from the boundaries.
//
// Concretely, vertex i sets parameter j to the fraction
//
//	((i + j) mod (dim+1) + 0.5) / (dim+1)
//
// of its range — a cyclic Latin design. The fraction matrix is a circulant
// with distinct entries, so the dim+1 points are affinely independent
// (the simplex is never degenerate) while every parameter still visits
// dim+1 evenly spaced interior levels across the initial explorations.
type DistributedInit struct{}

// Name implements InitStrategy.
func (DistributedInit) Name() string { return "distributed" }

// Initial implements InitStrategy.
func (DistributedInit) Initial(space *Space) [][]float64 {
	dim := space.Dim()
	n := dim + 1
	pts := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j, p := range space.Params {
			frac := (float64((i+j)%n) + 0.5) / float64(n)
			v[j] = float64(p.Min) + frac*float64(p.Max-p.Min)
		}
		pts[i] = v
	}
	return pts
}

// SeededInit wraps another strategy but replaces its leading vertices with
// caller-provided points (historical configurations from the experience
// database, §4.2). Missing vertices are filled from the fallback strategy.
type SeededInit struct {
	Seeds    [][]float64
	Fallback InitStrategy
}

// Name implements InitStrategy.
func (s SeededInit) Name() string { return "seeded+" + s.Fallback.Name() }

// Initial implements InitStrategy.
func (s SeededInit) Initial(space *Space) [][]float64 {
	dim := space.Dim()
	want := dim + 1
	pts := make([][]float64, 0, want)
	for _, seed := range s.Seeds {
		if len(seed) != dim {
			continue
		}
		pts = append(pts, append([]float64(nil), seed...))
		if len(pts) == want {
			return pts
		}
	}
	for _, fill := range s.Fallback.Initial(space) {
		if len(pts) == want {
			break
		}
		if containsPoint(pts, fill) {
			continue
		}
		pts = append(pts, fill)
	}
	return pts
}

func containsPoint(pts [][]float64, q []float64) bool {
	for _, p := range pts {
		same := true
		for i := range p {
			if p[i] != q[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
