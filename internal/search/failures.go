package search

import "math"

// failurePenaltyMagnitude is the worst-case performance assigned to failed
// measurements. It is finite (so ordering, centroid and spread arithmetic in
// the kernel stay well-defined — NaN would poison every comparison) but so
// extreme that a failed point can never be mistaken for a good vertex: the
// simplex immediately moves away from it.
const failurePenaltyMagnitude = 1e300

// FailurePenalty returns the worst possible finite performance under dir:
// the score a tuning system assigns to an evaluation that failed outright
// (client crash mid-measurement, non-finite report, evaluation timeout).
// Online tuners must tolerate lost measurements mid-search rather than
// aborting the session, so failed points are scored as maximally bad and
// the search continues.
func FailurePenalty(dir Direction) float64 {
	if dir == Maximize {
		return -failurePenaltyMagnitude
	}
	return failurePenaltyMagnitude
}

// IsFailure reports whether perf is a failure score: the sentinel penalty
// itself, any value whose magnitude reaches it (no real measurement is that
// extreme in either direction — such a report is garbage, not data), or a
// non-finite value.
func IsFailure(perf float64, dir Direction) bool {
	_ = dir // the magnitude test is direction-symmetric; dir kept for API clarity
	if math.IsNaN(perf) || math.IsInf(perf, 0) {
		return true
	}
	return math.Abs(perf) >= failurePenaltyMagnitude
}

// Sanitize maps a reported performance to a kernel-safe value: non-finite
// reports (NaN, ±Inf) become the worst-case penalty, and finite reports
// beyond the penalty magnitude are clamped to it. Everything the simplex
// consumes is therefore finite and totally ordered.
func Sanitize(perf float64, dir Direction) float64 {
	if math.IsNaN(perf) || math.IsInf(perf, 0) {
		return FailurePenalty(dir)
	}
	if perf > failurePenaltyMagnitude {
		return failurePenaltyMagnitude
	}
	if perf < -failurePenaltyMagnitude {
		return -failurePenaltyMagnitude
	}
	return perf
}

// FailableObjectiveFunc is a measurement that can fail. A non-nil error
// means the configuration could not be measured at all.
type FailableObjectiveFunc func(cfg Config) (float64, error)

// Failable adapts a measurement that can fail to the Objective interface:
// failed evaluations score as the worst-case penalty for dir, and noisy
// successes are sanitized so non-finite values never reach the kernel. This
// is the objective wrapper the tuning server uses to keep a simplex alive
// across client crashes and garbage reports.
func Failable(f FailableObjectiveFunc, dir Direction) Objective {
	return ObjectiveFunc(func(cfg Config) float64 {
		perf, err := f(cfg)
		if err != nil {
			return FailurePenalty(dir)
		}
		return Sanitize(perf, dir)
	})
}
