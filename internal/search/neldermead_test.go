package search

import (
	"math"
	"testing"
	"testing/quick"

	"harmony/internal/stats"
)

// quadSpace is a 3-parameter space whose objective peaks at an interior
// point — the shape the paper says real systems have (§4.1).
func quadSpace() (*Space, Objective) {
	s := MustSpace(
		Param{Name: "x", Min: 0, Max: 100, Step: 1, Default: 50},
		Param{Name: "y", Min: 0, Max: 100, Step: 1, Default: 50},
		Param{Name: "z", Min: 0, Max: 100, Step: 1, Default: 50},
	)
	target := []float64{60, 30, 75}
	obj := ObjectiveFunc(func(c Config) float64 {
		sum := 0.0
		for i, v := range c {
			d := float64(v) - target[i]
			sum += d * d
		}
		return 1000 - sum/10
	})
	return s, obj
}

func TestNelderMeadFindsInteriorOptimum(t *testing.T) {
	s, obj := quadSpace()
	res, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize,
		MaxEvals:  300,
		Init:      DistributedInit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Optimum perf is 1000 at (60, 30, 75); require close.
	if res.BestPerf < 990 {
		t.Errorf("BestPerf = %v at %v, want >= 990", res.BestPerf, res.BestConfig)
	}
	if res.Evals != len(res.Trace) {
		t.Errorf("Evals = %d, trace len = %d", res.Evals, len(res.Trace))
	}
}

func TestNelderMeadMinimize(t *testing.T) {
	s := MustSpace(
		Param{Name: "x", Min: -50, Max: 50, Step: 1, Default: 40},
		Param{Name: "y", Min: -50, Max: 50, Step: 1, Default: 40},
	)
	obj := ObjectiveFunc(func(c Config) float64 {
		dx, dy := float64(c[0]-7), float64(c[1]+11)
		return dx*dx + dy*dy
	})
	res, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Minimize,
		MaxEvals:  300,
		Init:      DistributedInit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf > 10 {
		t.Errorf("BestPerf = %v at %v, want near 0 (optimum (7,-11))", res.BestPerf, res.BestConfig)
	}
}

func TestNelderMeadRespectsBudget(t *testing.T) {
	s, obj := quadSpace()
	res, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize,
		MaxEvals:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals > 10 {
		t.Errorf("Evals = %d, want <= 10", res.Evals)
	}
}

func TestNelderMeadBudgetSmallerThanSimplex(t *testing.T) {
	// Budget smaller than dim+1: the search must still return gracefully
	// with the best of the measured vertices.
	s, obj := quadSpace()
	res, err := NelderMead(s, obj, NelderMeadOptions{Direction: Maximize, MaxEvals: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 2 || len(res.BestConfig) == 0 {
		t.Errorf("Evals = %d BestConfig = %v", res.Evals, res.BestConfig)
	}
	if res.Converged {
		t.Error("truncated run reported convergence")
	}
}

func TestNelderMeadAllConfigsInSpace(t *testing.T) {
	s, obj := quadSpace()
	res, err := NelderMead(s, obj, NelderMeadOptions{Direction: Maximize, MaxEvals: 150})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Trace {
		if !s.Contains(e.Config) {
			t.Fatalf("trace contains off-grid config %v", e.Config)
		}
	}
}

func TestNelderMeadBestIsMonotoneOverTrace(t *testing.T) {
	// Best-so-far must equal the reported best at the end.
	s, obj := quadSpace()
	res, err := NelderMead(s, obj, NelderMeadOptions{Direction: Maximize, MaxEvals: 150})
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(-1)
	for _, e := range res.Trace {
		if e.Perf > best {
			best = e.Perf
		}
	}
	if best != res.BestPerf {
		t.Errorf("trace best %v != result best %v", best, res.BestPerf)
	}
}

func TestExtremeInitShape(t *testing.T) {
	s := MustSpace(
		Param{Name: "a", Min: 1, Max: 9, Step: 1, Default: 5},
		Param{Name: "b", Min: 10, Max: 20, Step: 1, Default: 15},
	)
	pts := ExtremeInit{}.Initial(s)
	if len(pts) != 3 {
		t.Fatalf("got %d vertices, want 3", len(pts))
	}
	// Vertex 0 at the minimum corner.
	if pts[0][0] != 1 || pts[0][1] != 10 {
		t.Errorf("vertex 0 = %v, want [1 10]", pts[0])
	}
	// Every vertex touches only extreme values.
	for i, pt := range pts {
		for j, v := range pt {
			p := s.Params[j]
			if v != float64(p.Min) && v != float64(p.Max) {
				t.Errorf("vertex %d param %d = %v is not extreme", i, j, v)
			}
		}
	}
}

func TestDistributedInitAvoidsExtremes(t *testing.T) {
	s := MustSpace(
		Param{Name: "a", Min: 0, Max: 100, Step: 1, Default: 50},
		Param{Name: "b", Min: 0, Max: 100, Step: 1, Default: 50},
		Param{Name: "c", Min: 0, Max: 100, Step: 1, Default: 50},
	)
	pts := DistributedInit{}.Initial(s)
	if len(pts) != 4 {
		t.Fatalf("got %d vertices, want 4", len(pts))
	}
	for i, pt := range pts {
		for j, v := range pt {
			p := s.Params[j]
			if v <= float64(p.Min) || v >= float64(p.Max) {
				t.Errorf("vertex %d param %d = %v touches an extreme", i, j, v)
			}
		}
	}
}

func TestDistributedInitCoversEachParameterEvenly(t *testing.T) {
	s := MustSpace(
		Param{Name: "a", Min: 0, Max: 90, Step: 1, Default: 0},
		Param{Name: "b", Min: 0, Max: 90, Step: 1, Default: 0},
	)
	pts := DistributedInit{}.Initial(s)
	// Each parameter must take 3 distinct evenly spaced levels across the
	// 3 vertices (dim+1 = 3 levels at fractions 1/6, 3/6, 5/6 → 15, 45, 75).
	for j := 0; j < 2; j++ {
		levels := map[float64]bool{}
		for _, pt := range pts {
			levels[pt[j]] = true
		}
		for _, want := range []float64{15, 45, 75} {
			if !levels[want] {
				t.Errorf("param %d levels = %v, missing %v", j, levels, want)
			}
		}
	}
}

func TestDistributedInitNonDegenerateProperty(t *testing.T) {
	// For arbitrary dimensionality, the simplex must be affinely independent:
	// the volume (determinant of edge vectors) must be non-zero.
	f := func(dims uint8) bool {
		dim := 2 + int(dims)%5 // 2..6
		params := make([]Param, dim)
		for i := range params {
			params[i] = Param{Name: "p" + itoa(i), Min: 0, Max: 1000, Step: 1, Default: 0}
		}
		s := MustSpace(params...)
		pts := DistributedInit{}.Initial(s)
		// Build edge matrix and compute rank via Gaussian elimination.
		m := make([][]float64, dim)
		for i := 0; i < dim; i++ {
			m[i] = make([]float64, dim)
			for j := 0; j < dim; j++ {
				m[i][j] = pts[i+1][j] - pts[0][j]
			}
		}
		return rank(m) == dim
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// rank computes the numerical rank of a small dense matrix.
func rank(m [][]float64) int {
	rows := len(m)
	if rows == 0 {
		return 0
	}
	cols := len(m[0])
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		pivot := r
		for i := r + 1; i < rows; i++ {
			if math.Abs(m[i][c]) > math.Abs(m[pivot][c]) {
				pivot = i
			}
		}
		if math.Abs(m[pivot][c]) < 1e-9 {
			continue
		}
		m[r], m[pivot] = m[pivot], m[r]
		for i := r + 1; i < rows; i++ {
			f := m[i][c] / m[r][c]
			for j := c; j < cols; j++ {
				m[i][j] -= f * m[r][j]
			}
		}
		r++
	}
	return r
}

func TestSeededInit(t *testing.T) {
	s := MustSpace(
		Param{Name: "a", Min: 0, Max: 10, Step: 1, Default: 5},
		Param{Name: "b", Min: 0, Max: 10, Step: 1, Default: 5},
	)
	seeds := [][]float64{{3, 4}, {7, 7, 7} /* wrong dim, skipped */, {6, 2}}
	init := SeededInit{Seeds: seeds, Fallback: DistributedInit{}}
	pts := init.Initial(s)
	if len(pts) != 3 {
		t.Fatalf("got %d vertices, want 3", len(pts))
	}
	if pts[0][0] != 3 || pts[0][1] != 4 {
		t.Errorf("vertex 0 = %v, want seed [3 4]", pts[0])
	}
	if pts[1][0] != 6 || pts[1][1] != 2 {
		t.Errorf("vertex 1 = %v, want seed [6 2]", pts[1])
	}
}

func TestSeededInitTruncatesExtraSeeds(t *testing.T) {
	s := MustSpace(Param{Name: "a", Min: 0, Max: 10, Step: 1, Default: 5})
	init := SeededInit{
		Seeds:    [][]float64{{1}, {2}, {3}, {4}},
		Fallback: ExtremeInit{},
	}
	pts := init.Initial(s)
	if len(pts) != 2 {
		t.Fatalf("got %d vertices, want 2 (dim+1)", len(pts))
	}
}

func TestSeededInitSkipsDuplicateFallback(t *testing.T) {
	s := MustSpace(
		Param{Name: "a", Min: 0, Max: 10, Step: 1, Default: 5},
		Param{Name: "b", Min: 0, Max: 10, Step: 1, Default: 5},
	)
	// Seed equal to the first extreme vertex: fallback must not duplicate it.
	init := SeededInit{Seeds: [][]float64{{0, 0}}, Fallback: ExtremeInit{}}
	pts := init.Initial(s)
	if len(pts) != 3 {
		t.Fatalf("got %d vertices, want 3", len(pts))
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i][0] == pts[j][0] && pts[i][1] == pts[j][1] {
				t.Errorf("duplicate vertices %d and %d: %v", i, j, pts[i])
			}
		}
	}
}

func TestNelderMeadImprovedBeatsOriginalOnInteriorOptimum(t *testing.T) {
	// The paper's core §4.1 claim, on a clean interior-optimum surface: the
	// distributed initial simplex explores fewer terrible configurations.
	s, obj := quadSpace()
	orig, err := NelderMead(s, obj, NelderMeadOptions{Direction: Maximize, MaxEvals: 200, Init: ExtremeInit{}})
	if err != nil {
		t.Fatal(err)
	}
	impr, err := NelderMead(s, obj, NelderMeadOptions{Direction: Maximize, MaxEvals: 200, Init: DistributedInit{}})
	if err != nil {
		t.Fatal(err)
	}
	if impr.Trace.Worst(Maximize).Perf < orig.Trace.Worst(Maximize).Perf {
		t.Errorf("improved kernel worst %v is worse than original worst %v",
			impr.Trace.Worst(Maximize).Perf, orig.Trace.Worst(Maximize).Perf)
	}
	// The improved kernel should land near-optimal; the original may stop at
	// a noticeably worse point (that is the paper's point), but must still
	// have made clear progress from the worst corner.
	if impr.BestPerf < 950 {
		t.Errorf("improved best perf too low: %v", impr.BestPerf)
	}
	if orig.BestPerf < 800 {
		t.Errorf("original best perf too low: %v", orig.BestPerf)
	}
}

func TestNelderMeadWithEvaluatorSeededHistory(t *testing.T) {
	s, obj := quadSpace()
	ev := NewEvaluator(s, obj)
	// Pre-seed the near-optimal region as historical knowledge.
	if err := ev.Seed(Config{60, 30, 75}, 1000); err != nil {
		t.Fatal(err)
	}
	opts := NelderMeadOptions{
		Direction: Maximize,
		MaxEvals:  50,
		Init: SeededInit{
			Seeds:    [][]float64{{60, 30, 75}},
			Fallback: DistributedInit{},
		},
	}
	res, err := NelderMeadWithEvaluator(s, ev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf < 990 {
		t.Errorf("warm-started BestPerf = %v, want ~1000", res.BestPerf)
	}
}

func TestExhaustive(t *testing.T) {
	s := MustSpace(
		Param{Name: "a", Min: 0, Max: 4, Step: 1, Default: 0},
		Param{Name: "b", Min: 0, Max: 4, Step: 1, Default: 0},
	)
	obj := ObjectiveFunc(func(c Config) float64 { return float64(c[0]*10 + c[1]) })
	res, err := Exhaustive(s, obj, Maximize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 25 {
		t.Errorf("Evals = %d, want 25", res.Evals)
	}
	if !res.BestConfig.Equal(Config{4, 4}) || res.BestPerf != 44 {
		t.Errorf("best = %v %v, want [4 4] 44", res.BestConfig, res.BestPerf)
	}
}

func TestExhaustiveRefusesHugeSpaces(t *testing.T) {
	s := MustSpace(
		Param{Name: "a", Min: 0, Max: 999, Step: 1, Default: 0},
		Param{Name: "b", Min: 0, Max: 999, Step: 1, Default: 0},
		Param{Name: "c", Min: 0, Max: 999, Step: 1, Default: 0},
	)
	if _, err := Exhaustive(s, ObjectiveFunc(func(c Config) float64 { return 0 }), Maximize, 1000); err == nil {
		t.Error("huge exhaustive search did not error")
	}
}

func TestRandomSearch(t *testing.T) {
	s, obj := quadSpace()
	rng := stats.NewRNG(99)
	res, err := RandomSearch(s, obj, Maximize, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals == 0 || res.Evals > 50 {
		t.Errorf("Evals = %d, want in (0, 50]", res.Evals)
	}
	for _, e := range res.Trace {
		if !s.Contains(e.Config) {
			t.Fatalf("random config %v off grid", e.Config)
		}
	}
	if _, err := RandomSearch(s, obj, Maximize, 0, rng); err == nil {
		t.Error("n=0 did not error")
	}
}

func TestRandomSearchSmallSpaceTerminates(t *testing.T) {
	s := MustSpace(Param{Name: "a", Min: 0, Max: 1, Step: 1, Default: 0})
	rng := stats.NewRNG(1)
	res, err := RandomSearch(s, ObjectiveFunc(func(c Config) float64 { return float64(c[0]) }), Maximize, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals > 2 {
		t.Errorf("Evals = %d, want <= 2 (space has 2 configs)", res.Evals)
	}
}

func TestNelderMeadRestartsImproveOrMatch(t *testing.T) {
	// A surface with a deceptive ridge: restarts refine the answer.
	s := MustSpace(
		Param{Name: "x", Min: 0, Max: 400, Step: 1, Default: 200},
		Param{Name: "y", Min: 0, Max: 400, Step: 1, Default: 200},
	)
	obj := ObjectiveFunc(func(c Config) float64 {
		u := float64(c[0]+c[1]) - 500
		v := float64(c[0] - c[1] - 60)
		return -(u*u/100 + v*v)
	})
	plain, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 400, Init: DistributedInit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 400, Init: DistributedInit{}, Restarts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if restarted.BestPerf < plain.BestPerf {
		t.Errorf("restarted best %v below plain %v", restarted.BestPerf, plain.BestPerf)
	}
	if restarted.Evals > 400 {
		t.Errorf("restarts exceeded budget: %d", restarted.Evals)
	}
}

func TestScaledInitStaysInBoundsAndCentered(t *testing.T) {
	s := MustSpace(
		Param{Name: "a", Min: 0, Max: 100, Step: 1, Default: 50},
		Param{Name: "b", Min: 0, Max: 100, Step: 1, Default: 50},
	)
	init := scaledInit{center: []float64{90, 10}, frac: 0.5}
	pts := init.Initial(s)
	if len(pts) != 3 {
		t.Fatalf("got %d vertices", len(pts))
	}
	for _, pt := range pts {
		for j, v := range pt {
			p := s.Params[j]
			if v < float64(p.Min) || v > float64(p.Max) {
				t.Errorf("vertex %v out of bounds", pt)
			}
			// Within the scaled half-span of the center (after clamping).
			if j == 1 && (v < 10-26 || v > 10+26) {
				t.Errorf("vertex coord %v too far from center 10", v)
			}
		}
	}
}

func TestNelderMeadRestartsWithExhaustedBudget(t *testing.T) {
	// When the first run eats the budget, restarts must be a no-op.
	s, obj := quadSpace()
	res, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 8, Restarts: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals > 8 {
		t.Errorf("budget exceeded: %d", res.Evals)
	}
}
