package search_test

import (
	"fmt"

	"harmony/internal/search"
)

// ExampleNelderMead tunes a two-parameter system with the improved
// (evenly-distributed) initial exploration.
func ExampleNelderMead() {
	space := search.MustSpace(
		search.Param{Name: "bufferKB", Min: 1, Max: 64, Step: 1, Default: 8},
		search.Param{Name: "threads", Min: 1, Max: 32, Step: 1, Default: 4},
	)
	objective := search.ObjectiveFunc(func(cfg search.Config) float64 {
		db, dt := float64(cfg[0]-48), float64(cfg[1]-12)
		return 100 - db*db/16 - dt*dt
	})
	res, err := search.NelderMead(space, objective, search.NelderMeadOptions{
		Direction: search.Maximize,
		MaxEvals:  120,
		Init:      search.DistributedInit{},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("best %v -> %.0f\n", res.BestConfig, res.BestPerf)
	// Output: best [48 12] -> 100
}

// ExamplePowell minimizes with the direction-set baseline.
func ExamplePowell() {
	space := search.MustSpace(
		search.Param{Name: "x", Min: -20, Max: 20, Step: 1, Default: 15},
	)
	objective := search.ObjectiveFunc(func(cfg search.Config) float64 {
		d := float64(cfg[0] + 3)
		return d * d
	})
	res, err := search.Powell(space, objective, search.PowellOptions{
		Direction: search.Minimize,
		MaxEvals:  100,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("minimum at x=%d\n", res.BestConfig[0])
	// Output: minimum at x=-3
}

// ExampleSpace_Subspace restricts tuning to a prioritized parameter subset.
func ExampleSpace_Subspace() {
	space := search.MustSpace(
		search.Param{Name: "a", Min: 0, Max: 9, Step: 1, Default: 1},
		search.Param{Name: "b", Min: 0, Max: 9, Step: 1, Default: 2},
		search.Param{Name: "c", Min: 0, Max: 9, Step: 1, Default: 3},
	)
	sub, embed, err := space.Subspace([]int{2, 0}, space.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(sub.Names())
	fmt.Println(embed(search.Config{7, 8}))
	// Output:
	// [c a]
	// [8 2 7]
}
