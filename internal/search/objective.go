package search

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Direction states whether larger or smaller objective values are better.
// The paper's web-service metric (WIPS) is maximized; generic optimization
// literature minimizes. The kernel supports both.
type Direction int

const (
	// Maximize means higher performance values are better (e.g. WIPS).
	Maximize Direction = iota
	// Minimize means lower values are better (e.g. latency, runtime).
	Minimize
)

// String implements fmt.Stringer with the wire spellings ("max" / "min").
func (d Direction) String() string {
	if d == Minimize {
		return "min"
	}
	return "max"
}

// Better reports whether a is strictly better than b under the direction.
func (d Direction) Better(a, b float64) bool {
	if d == Maximize {
		return a > b
	}
	return a < b
}

// Objective measures the performance of one configuration. Measurements may
// be noisy and expensive; the kernel treats each call as one configuration
// exploration (the paper's unit of tuning time).
type Objective interface {
	Measure(cfg Config) float64
}

// ObjectiveFunc adapts a plain function to the Objective interface.
type ObjectiveFunc func(cfg Config) float64

// Measure calls f.
func (f ObjectiveFunc) Measure(cfg Config) float64 { return f(cfg) }

// FidelityObjective is an Objective that can also measure at reduced
// fidelity: a cheaper, noisier observation of the same configuration
// (shorter simulated horizon, fewer sampled requests). fidelity is in
// (0, 1]; MeasureAt(cfg, 1) must agree with Measure(cfg). Objectives that
// do not implement it are measured at full cost regardless of the
// requested fidelity.
type FidelityObjective interface {
	Objective
	MeasureAt(cfg Config, fidelity float64) float64
}

// FidelityObjectiveFunc adapts a fidelity-aware function to
// FidelityObjective; full-fidelity Measure delegates with fidelity 1.
type FidelityObjectiveFunc func(cfg Config, fidelity float64) float64

// Measure calls f at full fidelity.
func (f FidelityObjectiveFunc) Measure(cfg Config) float64 { return f(cfg, 1) }

// MeasureAt calls f.
func (f FidelityObjectiveFunc) MeasureAt(cfg Config, fidelity float64) float64 {
	return f(cfg, fidelity)
}

// FullFidelity reports whether f denotes a full-fidelity measurement.
// Zero means "unset" and is treated as full so the single-fidelity world
// never has to think about the field.
func FullFidelity(f float64) bool { return f == 0 || f >= 1 }

// Evaluation records one configuration exploration.
type Evaluation struct {
	Index  int     // 0-based exploration order
	Config Config  // the (snapped) configuration measured
	Perf   float64 // observed performance
	// Estimated reports that Perf came from the external layer's
	// estimation gate (§4.3) rather than a real measurement. Estimated
	// entries consume budget and steer the search like any committed
	// evaluation, but they are not ground truth: experience deposits
	// filter them out (see Trace.Measured).
	Estimated bool
	// Fidelity is the measurement fidelity (0 or 1 = full). Low-fidelity
	// observations are cheap but noisy triage data: experience deposits
	// filter them out (see Trace.Measured) so they never masquerade as
	// ground truth in the prior-run store.
	Fidelity float64
}

// Trace is the ordered history of explorations in one tuning session.
type Trace []Evaluation

// Measured returns the trace restricted to full-fidelity real
// measurements — entries the estimation gate answered and low-fidelity
// triage observations are dropped. Experience deposits use it so neither
// estimates nor noisy rung samples masquerade as ground truth in the
// prior-run store. When nothing needs filtering the receiver itself is
// returned (no copy).
func (t Trace) Measured() Trace {
	drop := 0
	for _, e := range t {
		if e.Estimated || !FullFidelity(e.Fidelity) {
			drop++
		}
	}
	if drop == 0 {
		return t
	}
	out := make(Trace, 0, len(t)-drop)
	for _, e := range t {
		if !e.Estimated && FullFidelity(e.Fidelity) {
			out = append(out, e)
		}
	}
	return out
}

// Best returns the best evaluation under dir. Real full-fidelity
// measurements are strictly preferred: neither a gate estimate (an
// unmeasured plane-fit answer, §4.3) nor a noisy low-fidelity triage
// observation can be the best while the trace holds any real measurement
// — claiming an estimate as a session's best is exactly the gated-best
// divergence BENCH_eval_cache.json recorded. Among the second-class
// entries, full-fidelity estimates outrank low-fidelity observations.
// Traces with neither gate nor triage entries are unaffected. It panics
// on an empty trace.
func (t Trace) Best(dir Direction) Evaluation {
	if len(t) == 0 {
		panic("search: Best of empty trace")
	}
	rank := func(e Evaluation) int {
		switch {
		case !FullFidelity(e.Fidelity):
			return 0
		case e.Estimated:
			return 1
		}
		return 2
	}
	best := t[0]
	bestRank := rank(best)
	for _, e := range t[1:] {
		switch r := rank(e); {
		case r > bestRank:
			best, bestRank = e, r
		case r == bestRank && dir.Better(e.Perf, best.Perf):
			best = e
		}
	}
	return best
}

// Worst returns the worst performance observed, the paper's Table 1
// "worst performance" column (how rough the tuning ride was).
func (t Trace) Worst(dir Direction) Evaluation {
	if len(t) == 0 {
		panic("search: Worst of empty trace")
	}
	worst := t[0]
	for _, e := range t[1:] {
		if dir.Better(worst.Perf, e.Perf) {
			worst = e
		}
	}
	return worst
}

// Perfs returns the raw performance series.
func (t Trace) Perfs() []float64 {
	out := make([]float64, len(t))
	for i, e := range t {
		out[i] = e.Perf
	}
	return out
}

// ConvergenceIteration returns the 1-based exploration index after which the
// best-so-far value never again improves by more than relTol (relative to
// the final best). This matches the paper's "convergence time (iterations)":
// the point where tuning has effectively finished even if the search keeps
// probing. Returns 0 for an empty trace.
func (t Trace) ConvergenceIteration(dir Direction, relTol float64) int {
	if len(t) == 0 {
		return 0
	}
	final := t.Best(dir).Perf
	tol := relTol * abs(final)
	// Find the earliest index where best-so-far is within tol of the final.
	best := t[0].Perf
	for i, e := range t {
		if dir.Better(e.Perf, best) {
			best = e.Perf
		}
		if !dir.Better(final, best) || abs(final-best) <= tol {
			return i + 1
		}
	}
	return len(t)
}

// BadIterations counts explorations whose performance falls below (for
// Maximize; above for Minimize) the given fraction of the final best. The
// paper reports "bad performance iterations" when comparing tuning with and
// without prior histories (§6.4).
func (t Trace) BadIterations(dir Direction, frac float64) int {
	if len(t) == 0 {
		return 0
	}
	best := t.Best(dir).Perf
	count := 0
	for _, e := range t {
		if dir == Maximize {
			if e.Perf < frac*best {
				count++
			}
		} else {
			if e.Perf > best/frac {
				count++
			}
		}
	}
	return count
}

// InitialWindow returns the first k evaluations (or the whole trace when it
// is shorter). The paper's Table 2 reports the mean and standard deviation of
// performance in the initial oscillation stage.
func (t Trace) InitialWindow(k int) Trace {
	if k > len(t) {
		k = len(t)
	}
	return t[:k]
}

// ExternalCache is the measure-once layer an Evaluator consults between
// its own per-session bookkeeping and the real objective: a cross-session
// config→perf memo with singleflight coalescing, optionally backed by the
// §4.3 estimation gate (see the evalcache package).
//
// Contract: Lookup answers with a previously measured truth (estimated ==
// false) or a gate estimate (estimated == true); Measure obtains the truth
// for cfg, calling measure at most once across concurrent duplicate
// requests (other callers of the same configuration share the one result)
// and remembering it for future Lookups. Implementations must be safe for
// concurrent use — EvalBatch and Speculate call them from worker
// goroutines.
//
// Externally answered probes are committed to the trace exactly like
// measurements (budget charge, trace index, tracer event), so with a
// deterministic objective and exact-only answers the committed trajectory
// is byte-identical to an uncached run — only the number of real objective
// invocations drops.
type ExternalCache interface {
	Lookup(cfg Config) (perf float64, estimated, ok bool)
	Measure(cfg Config, measure func() float64) float64
}

// FidelityExternalCache is an ExternalCache that additionally keys entries
// on (config, fidelity). Reuse is promotion-aware: a full-fidelity truth
// may answer a lower-fidelity probe (the real number is strictly better
// information than a noisy short run), but a low-fidelity observation must
// never answer a full-fidelity probe. External layers that do not
// implement it are simply bypassed for reduced-fidelity evaluations.
type FidelityExternalCache interface {
	ExternalCache
	LookupAt(cfg Config, fidelity float64) (perf float64, estimated, ok bool)
	MeasureAt(cfg Config, fidelity float64, measure func() float64) float64
}

// Evaluator wraps an Objective with exploration counting, a snap-to-grid
// step, a deduplication cache and trace recording. The cache mirrors the
// tuning server's record of "all the parameter values together with the
// associated performance results" (§4.2): re-visiting a configuration does
// not cost another measurement.
type Evaluator struct {
	Space     *Space
	Objective Objective
	// MaxEvals, when > 0, bounds the number of distinct measurements; further
	// measurements return the cached value when available or an error.
	MaxEvals int
	// DisableCache forces re-measurement of repeated configurations (used by
	// the ablation bench to quantify the cache's value under noise).
	DisableCache bool
	// Tracer, when non-nil, receives an EventEval for every exploration
	// (fresh measurements and cache hits) and an EventSeed for every
	// training-stage injection. Events are emitted in commit order — even
	// for parallel batches — so the stream is deterministic for
	// deterministic objectives. Nil costs one branch per call.
	Tracer Tracer
	// External, when non-nil, is the measure-once layer consulted after a
	// local cache miss and budget check: an external answer (prior truth,
	// coalesced peer measurement, or gate estimate) is committed exactly
	// like a fresh measurement. Ignored when DisableCache is set (the
	// ablation mode re-measures everything by design).
	External ExternalCache

	cache map[string]float64
	trace Trace
	hits  int
	// keyBuf is EvalConfig's reusable key scratch: probing the cache with
	// string(keyBuf) compiles to an allocation-free map lookup, so only a
	// committed measurement materializes its key string. Safe because
	// EvalConfig runs on the evaluator's own goroutine.
	keyBuf []byte
}

// appendKey appends cfg's canonical key form (identical to Config.Key) to b.
func appendKey(b []byte, c Config) []byte {
	for i, v := range c {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return b
}

// NewEvaluator returns an Evaluator over the space and objective.
func NewEvaluator(space *Space, obj Objective) *Evaluator {
	return &Evaluator{Space: space, Objective: obj, cache: map[string]float64{}}
}

// ErrBudget is returned by Eval when the exploration budget is exhausted.
var ErrBudget = fmt.Errorf("search: evaluation budget exhausted")

// Eval measures the configuration nearest to the continuous point pt.
// Cached configurations are free; fresh measurements append to the trace.
func (e *Evaluator) Eval(pt []float64) (Config, float64, error) {
	cfg := e.Space.Snap(pt)
	return e.EvalConfig(cfg)
}

// EvalConfig measures an exact grid configuration.
func (e *Evaluator) EvalConfig(cfg Config) (Config, float64, error) {
	if !e.Space.Contains(cfg) {
		return nil, 0, fmt.Errorf("search: configuration %v not in space", cfg)
	}
	e.keyBuf = appendKey(e.keyBuf[:0], cfg)
	if !e.DisableCache {
		if perf, ok := e.cache[string(e.keyBuf)]; ok { // alloc-free lookup
			e.hits++
			if e.Tracer != nil {
				emit(e.Tracer, Event{Type: EventEval, Index: -1, Config: cfg.Clone(), Perf: perf, Cached: true})
			}
			return cfg, perf, nil
		}
	}
	if e.MaxEvals > 0 && len(e.trace) >= e.MaxEvals {
		return nil, 0, ErrBudget
	}
	perf, estimated := e.measure(cfg)
	e.commitKeyed(cfg, string(e.keyBuf), perf, estimated)
	return cfg, perf, nil
}

// EvalAt measures the configuration nearest to the continuous point pt at
// the given fidelity. See EvalConfigAt.
func (e *Evaluator) EvalAt(pt []float64, fidelity float64) (Config, float64, error) {
	return e.EvalConfigAt(e.Space.Snap(pt), fidelity)
}

// EvalConfigAt measures an exact grid configuration at the given fidelity.
// Full fidelity (0 or ≥1) takes the unchanged EvalConfig path, so
// trajectories are byte-identical when multi-fidelity is off. Reduced
// fidelity keys the dedup cache on (config, fidelity) with promotion-aware
// reuse: a full-fidelity truth already in the cache answers any probe, but
// a low-fidelity observation never answers a full-fidelity one.
func (e *Evaluator) EvalConfigAt(cfg Config, fidelity float64) (Config, float64, error) {
	if FullFidelity(fidelity) {
		return e.EvalConfig(cfg)
	}
	if !e.Space.Contains(cfg) {
		return nil, 0, fmt.Errorf("search: configuration %v not in space", cfg)
	}
	e.keyBuf = appendKey(e.keyBuf[:0], cfg)
	plain := len(e.keyBuf)
	e.keyBuf = appendFidelity(e.keyBuf, fidelity)
	if !e.DisableCache {
		if perf, ok := e.cache[string(e.keyBuf[:plain])]; ok { // promoted truth
			e.hits++
			if e.Tracer != nil {
				emit(e.Tracer, Event{Type: EventEval, Index: -1, Config: cfg.Clone(), Perf: perf, Cached: true})
			}
			return cfg, perf, nil
		}
		if perf, ok := e.cache[string(e.keyBuf)]; ok { // same-rung repeat
			e.hits++
			if e.Tracer != nil {
				emit(e.Tracer, Event{Type: EventEval, Index: -1, Config: cfg.Clone(), Perf: perf, Cached: true, Fidelity: fidelity})
			}
			return cfg, perf, nil
		}
	}
	if e.MaxEvals > 0 && len(e.trace) >= e.MaxEvals {
		return nil, 0, ErrBudget
	}
	perf, estimated := e.measureAt(cfg, fidelity)
	e.commitFidelity(cfg, string(e.keyBuf), perf, estimated, fidelity)
	return cfg, perf, nil
}

// appendFidelity appends the (config, fidelity) cache-key suffix. Full
// fidelity never gets a suffix, so single-fidelity keys are untouched.
func appendFidelity(b []byte, f float64) []byte {
	b = append(b, '@')
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// measureAt is measure with a fidelity request: the external layer is
// consulted only when it understands (config, fidelity) keying, and the
// objective only shortens its horizon when it implements
// FidelityObjective.
func (e *Evaluator) measureAt(cfg Config, fidelity float64) (perf float64, estimated bool) {
	if e.External != nil && !e.DisableCache {
		if fc, ok := e.External.(FidelityExternalCache); ok {
			if perf, est, ok := fc.LookupAt(cfg, fidelity); ok {
				return perf, est
			}
			return fc.MeasureAt(cfg, fidelity, func() float64 { return e.rawMeasureAt(cfg, fidelity) }), false
		}
	}
	return e.rawMeasureAt(cfg, fidelity), false
}

func (e *Evaluator) rawMeasureAt(cfg Config, fidelity float64) float64 {
	if fo, ok := e.Objective.(FidelityObjective); ok {
		return fo.MeasureAt(cfg, fidelity)
	}
	return e.Objective.Measure(cfg)
}

// commitFidelity commits a reduced-fidelity evaluation: the dedup cache
// learns it under the fidelity-suffixed key only (it must never answer a
// full-fidelity probe), and the trace entry and tracer event carry the
// fidelity so deposits and offline analysis can separate triage from
// truth.
func (e *Evaluator) commitFidelity(cfg Config, key string, perf float64, estimated bool, fidelity float64) {
	e.cache[key] = perf
	kept := cfg.Clone()
	e.trace = append(e.trace, Evaluation{Index: len(e.trace), Config: kept, Perf: perf, Estimated: estimated, Fidelity: fidelity})
	if e.Tracer != nil {
		emit(e.Tracer, Event{Type: EventEval, Index: len(e.trace) - 1, Config: kept, Perf: perf, Estimated: estimated, Fidelity: fidelity})
	}
}

// measure obtains the performance for cfg: through the external
// measure-once layer when one is wired (exact hit, coalesced peer
// measurement or gate estimate), through the real objective otherwise.
// Safe to call from EvalBatch/Speculate worker goroutines.
func (e *Evaluator) measure(cfg Config) (perf float64, estimated bool) {
	if e.External == nil || e.DisableCache {
		return e.Objective.Measure(cfg), false
	}
	if perf, est, ok := e.External.Lookup(cfg); ok {
		return perf, est
	}
	return e.External.Measure(cfg, func() float64 { return e.Objective.Measure(cfg) }), false
}

// commit appends one evaluation to the cache and trace and emits its
// tracer event. Must run on the evaluator's own goroutine (commit order is
// the determinism guarantee).
func (e *Evaluator) commit(cfg Config, perf float64, estimated bool) {
	e.commitKeyed(cfg, cfg.Key(), perf, estimated)
}

// commitKeyed is commit with the map key precomputed (EvalConfig already
// built it for the cache probe). The trace entry and the tracer event share
// one clone — both treat the configuration as immutable.
func (e *Evaluator) commitKeyed(cfg Config, key string, perf float64, estimated bool) {
	e.cache[key] = perf
	kept := cfg.Clone()
	e.trace = append(e.trace, Evaluation{Index: len(e.trace), Config: kept, Perf: perf, Estimated: estimated})
	if e.Tracer != nil {
		emit(e.Tracer, Event{Type: EventEval, Index: len(e.trace) - 1, Config: kept, Perf: perf, Estimated: estimated})
	}
}

// Seed injects an already-known (configuration, performance) pair without
// consuming budget — the "training stage" replay of historical data (§4.2).
func (e *Evaluator) Seed(cfg Config, perf float64) error {
	if !e.Space.Contains(cfg) {
		return fmt.Errorf("search: seed configuration %v not in space", cfg)
	}
	e.cache[cfg.Key()] = perf
	emit(e.Tracer, Event{Type: EventSeed, Index: -1, Config: cfg.Clone(), Perf: perf})
	return nil
}

// Count returns the number of real measurements performed.
func (e *Evaluator) Count() int { return len(e.trace) }

// Hits returns the number of probe requests answered from the cache
// (measurements the §4.2 record-keeping saved).
func (e *Evaluator) Hits() int { return e.hits }

// Trace returns a copy of the exploration history.
func (e *Evaluator) Trace() Trace {
	return append(Trace(nil), e.trace...)
}

// Known returns the cached performance for cfg, if present.
func (e *Evaluator) Known(cfg Config) (float64, bool) {
	perf, ok := e.cache[cfg.Key()]
	return perf, ok
}

// KnownConfigs returns all cached full-fidelity configurations in
// deterministic order. Fidelity-suffixed triage entries are skipped: they
// are noisy observations, not known truths.
func (e *Evaluator) KnownConfigs() []Config {
	keys := make([]string, 0, len(e.cache))
	for k := range e.cache {
		if strings.IndexByte(k, '@') >= 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Config, 0, len(keys))
	for _, k := range keys {
		out = append(out, parseKey(k))
	}
	return out
}

func parseKey(key string) Config {
	parts := splitComma(key)
	cfg := make(Config, len(parts))
	for i, p := range parts {
		v := 0
		neg := false
		for j := 0; j < len(p); j++ {
			if p[j] == '-' {
				neg = true
				continue
			}
			v = v*10 + int(p[j]-'0')
		}
		if neg {
			v = -v
		}
		cfg[i] = v
	}
	return cfg
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
