package search

import "time"

// EventType classifies the typed events a Tracer receives. The set covers
// everything the paper's trajectory claims depend on — evaluations, simplex
// operations, training-seed injection, and convergence decisions — plus the
// server-side events (failure-budget charges, phase markers) that share the
// same stream so one JSONL file reconstructs a whole session.
type EventType string

const (
	// EventEval is one configuration exploration: a real measurement
	// (Cached=false, Index = exploration order) or a cache hit
	// (Cached=true, Index = -1).
	EventEval EventType = "eval"
	// EventSeed is a training-stage injection of a historical
	// (configuration, performance) pair — it consumed no budget (§4.2).
	EventSeed EventType = "seed"
	// EventSimplex is one Nelder–Mead operation; Op is one of "reflect",
	// "expand", "contract_out", "contract_in" or "shrink".
	EventSimplex EventType = "simplex"
	// EventConverge is a kernel termination decision; Op is the reason:
	// "reltol", "stall", "budget" or "init_budget".
	EventConverge EventType = "converge"
	// EventPhase marks a stage boundary (Op = "training", "live",
	// "restart", ...). Emitted by the Tuner and the restart driver.
	EventPhase EventType = "phase"
	// EventBudget is a failure-budget charge against a session (server
	// side): Iter carries the fault count, Note describes the fault.
	EventBudget EventType = "budget"
	// EventRung marks multi-fidelity scheduler progress (mfsearch): Op is
	// "open" when a rung starts evaluating its candidates and "promote"
	// when the survivors are selected; Iter is the rung index within the
	// bracket, Fidelity the rung's measurement fidelity, and Note carries
	// bracket/candidate/survivor counts.
	EventRung EventType = "rung"
	// EventDrift marks workload-drift detector decisions (server side): Op
	// is "detect" when the live characteristic vector crosses the
	// hysteresis threshold away from the session's matched centroid and
	// "rematch" when the classifier is re-run against the new live vector
	// after the warm re-tune. Iter is the drift ordinal within the session,
	// Dist the triggering (squared-error) distance, and Note carries detail
	// (the rematched experience label, ...). Stationary sessions never emit
	// one, so their streams stay byte-identical with detection enabled.
	EventDrift EventType = "drift"
)

// Simplex operation names used in EventSimplex events.
const (
	OpReflect     = "reflect"
	OpExpand      = "expand"
	OpContractOut = "contract_out"
	OpContractIn  = "contract_in"
	OpShrink      = "shrink"
)

// Event is one structured observation of the tuning machinery. Fields not
// meaningful for a given Type stay at their zero values and are omitted
// from JSON encodings.
type Event struct {
	// Session identifies the tuning session the event belongs to (filled
	// by StampSession on shared sinks; empty for single-session tracers).
	Session string `json:"session,omitempty"`
	// Time is the emission time; the nil-safe emit helper fills it when
	// the producer left it zero.
	Time time.Time `json:"t"`
	Type EventType `json:"type"`
	// Op refines the event: the simplex operation, the convergence reason,
	// or the phase name.
	Op string `json:"op,omitempty"`
	// Iter is the simplex iteration (EventSimplex), the restart ordinal
	// (EventPhase "restart") or the fault count (EventBudget).
	Iter int `json:"iter,omitempty"`
	// Index is the 0-based exploration order for fresh measurements and -1
	// for cache hits.
	Index int `json:"index,omitempty"`
	// Config is the configuration measured or seeded.
	Config Config `json:"config,omitempty"`
	// Perf is the observed (or seeded, or probe) performance.
	Perf float64 `json:"perf,omitempty"`
	// Cached reports a cache hit (EventEval only).
	Cached bool `json:"cached,omitempty"`
	// Estimated reports that a committed evaluation's Perf came from the
	// measure-once layer's estimation gate (§4.3) rather than a real
	// measurement (EventEval only). Never set in exact-only cache mode, so
	// the field's omitempty keeps exact-mode streams byte-identical to
	// uncached ones.
	Estimated bool `json:"estimated,omitempty"`
	// Fidelity is the measurement fidelity of an evaluation or rung event.
	// Zero means full fidelity (the single-fidelity world never sets it),
	// so omitempty keeps exact-mode streams byte-identical when the
	// multi-fidelity scheduler is off.
	Fidelity float64 `json:"fidelity,omitempty"`
	// Dist is the characteristic-vector distance of an EventDrift (the
	// squared error between the live EWMA vector and the matched centroid
	// at the moment of the decision). Zero elsewhere; omitempty keeps every
	// other stream unchanged.
	Dist float64 `json:"dist,omitempty"`
	// Note carries free-form detail (which vertex a simplex op replaced,
	// the fault description for budget charges, ...).
	Note string `json:"note,omitempty"`
}

// Tracer receives typed events from the tuning machinery. Implementations
// used with a parallel evaluator do not need their own synchronization for
// ordering — the evaluator commits (and emits) in input order from a single
// goroutine — but a sink shared by several sessions must be safe for
// concurrent Emit calls (obs.JSONL is).
//
// Every emission site is nil-safe: a nil Tracer costs one branch, so
// un-instrumented library use pays ~zero.
type Tracer interface {
	Emit(Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Event)

// Emit calls f.
func (f TracerFunc) Emit(e Event) { f(e) }

// MultiTracer fans every event out to all non-nil tracers; it returns nil
// when none remain, so the nil-safe fast path is preserved.
func MultiTracer(ts ...Tracer) Tracer {
	live := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return TracerFunc(func(e Event) {
		for _, t := range live {
			t.Emit(e)
		}
	})
}

// StampSession wraps a tracer so every event carries the session ID —
// the convention that lets one shared sink (the server's -trace-out file)
// interleave many sessions and still be demultiplexed offline. A nil inner
// tracer yields nil.
func StampSession(t Tracer, session string) Tracer {
	if t == nil {
		return nil
	}
	return TracerFunc(func(e Event) {
		if e.Session == "" {
			e.Session = session
		}
		t.Emit(e)
	})
}

// emit is the nil-safe emission helper used by every instrumentation site:
// one branch when no tracer is installed, timestamping when there is one.
func emit(t Tracer, e Event) {
	if t == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	t.Emit(e)
}

// CollectTracer is an in-memory tracer for tests and examples: it appends
// every event to Events. Not safe for concurrent use across sessions.
type CollectTracer struct {
	Events []Event
}

// Emit implements Tracer.
func (c *CollectTracer) Emit(e Event) { c.Events = append(c.Events, e) }

// BestTrajectory folds an event stream into the best-so-far performance
// series of its committed explorations (cache hits and seeds excluded), in
// emission order. This is the offline reconstruction of the paper's
// convergence trajectory from a JSONL trace.
//
// Only real full-fidelity measurements may move the best: a gate estimate
// or a noisy low-fidelity triage observation contributes its point to the
// series but can never be claimed as best-so-far (mirroring Trace.Best and
// the server registry). Until the first real measurement exists such
// perfs stand in, and the first truth evicts them.
func BestTrajectory(events []Event, dir Direction) []float64 {
	var out []float64
	have := false     // any point at all
	haveTruth := false // best holds a real full-fidelity measurement
	best := 0.0
	for _, e := range events {
		if e.Type != EventEval || e.Cached {
			continue
		}
		truth := !e.Estimated && FullFidelity(e.Fidelity)
		switch {
		case truth && !haveTruth:
			best, haveTruth = e.Perf, true
		case truth && dir.Better(e.Perf, best):
			best = e.Perf
		case !truth && !haveTruth && (!have || dir.Better(e.Perf, best)):
			best = e.Perf
		}
		have = true
		out = append(out, best)
	}
	return out
}
