package search

import (
	"testing"
)

func fidelitySpace() *Space {
	return MustSpace(
		Param{Name: "x", Min: 0, Max: 10, Step: 1, Default: 5},
		Param{Name: "y", Min: 0, Max: 10, Step: 1, Default: 5},
	)
}

// countingFidObjective records full- and reduced-fidelity calls; reduced
// fidelity returns a shifted value so tests can tell the paths apart.
type countingFidObjective struct {
	full, low int
}

func (o *countingFidObjective) Measure(cfg Config) float64 {
	o.full++
	return float64(cfg[0]*10 + cfg[1])
}

func (o *countingFidObjective) MeasureAt(cfg Config, fidelity float64) float64 {
	if FullFidelity(fidelity) {
		return o.Measure(cfg)
	}
	o.low++
	return float64(cfg[0]*10+cfg[1]) + 1000*fidelity
}

func TestFullFidelity(t *testing.T) {
	for _, f := range []float64{0, 1, 1.5} {
		if !FullFidelity(f) {
			t.Errorf("FullFidelity(%v) = false, want true", f)
		}
	}
	for _, f := range []float64{0.001, 0.25, 0.999} {
		if FullFidelity(f) {
			t.Errorf("FullFidelity(%v) = true, want false", f)
		}
	}
}

func TestEvalConfigAtFullTakesPlainPath(t *testing.T) {
	obj := &countingFidObjective{}
	ev := NewEvaluator(fidelitySpace(), obj)
	cfg := Config{3, 4}
	_, perfA, err := ev.EvalConfigAt(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	_, perfB, err := ev.EvalConfigAt(cfg, 0) // 0 = unset = full
	if err != nil {
		t.Fatal(err)
	}
	if perfA != 34 || perfB != 34 {
		t.Fatalf("full-fidelity perfs = %v, %v, want 34", perfA, perfB)
	}
	if obj.full != 1 || obj.low != 0 {
		t.Fatalf("calls full=%d low=%d, want 1/0 (second probe is a cache hit)", obj.full, obj.low)
	}
	tr := ev.Trace()
	if len(tr) != 1 || tr[0].Fidelity != 0 {
		t.Fatalf("trace = %+v, want one full-fidelity entry", tr)
	}
}

func TestEvalConfigAtKeysOnFidelity(t *testing.T) {
	obj := &countingFidObjective{}
	ev := NewEvaluator(fidelitySpace(), obj)
	cfg := Config{3, 4}

	// A low-fidelity observation must not answer a full-fidelity probe.
	_, low, err := ev.EvalConfigAt(cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if low != 34+250 {
		t.Fatalf("low-fidelity perf = %v, want 284", low)
	}
	// Same (config, fidelity) repeats are cache hits…
	if _, again, _ := ev.EvalConfigAt(cfg, 0.25); again != low {
		t.Fatalf("repeat low probe = %v, want cached %v", again, low)
	}
	// …and distinct fidelities are distinct keys.
	if _, other, _ := ev.EvalConfigAt(cfg, 0.5); other != 34+500 {
		t.Fatalf("half-fidelity perf = %v, want 534", other)
	}
	_, full, err := ev.EvalConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full != 34 {
		t.Fatalf("full-fidelity perf after low = %v, want a fresh 34", full)
	}
	if obj.full != 1 || obj.low != 2 {
		t.Fatalf("calls full=%d low=%d, want 1/2", obj.full, obj.low)
	}

	// Promotion-aware reuse: once the full truth exists, any fidelity
	// probe of the config is answered with it, measurement-free.
	calls := obj.full + obj.low
	_, promoted, err := ev.EvalConfigAt(Config{3, 4}, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	if promoted != 34 {
		t.Fatalf("promoted probe = %v, want the full truth 34", promoted)
	}
	if obj.full+obj.low != calls {
		t.Fatal("promoted probe paid a measurement")
	}
}

func TestTraceMeasuredDropsLowFidelity(t *testing.T) {
	tr := Trace{
		{Index: 0, Perf: 1},
		{Index: 1, Perf: 2, Fidelity: 0.25},
		{Index: 2, Perf: 3, Estimated: true},
		{Index: 3, Perf: 4, Fidelity: 1},
	}
	got := tr.Measured()
	if len(got) != 2 || got[0].Perf != 1 || got[1].Perf != 4 {
		t.Fatalf("Measured() = %+v, want the two full-fidelity truths", got)
	}
	// No filtering needed → the receiver comes back uncopied.
	clean := Trace{{Perf: 1}, {Perf: 2}}
	if got := clean.Measured(); &got[0] != &clean[0] {
		t.Fatal("clean trace was copied")
	}
}

func TestTraceBestPrefersFullFidelity(t *testing.T) {
	tr := Trace{
		{Index: 0, Perf: 10},
		{Index: 1, Perf: 99, Fidelity: 0.25}, // noisy outlier
		{Index: 2, Perf: 20},
	}
	if best := tr.Best(Maximize); best.Perf != 20 {
		t.Fatalf("Best = %+v, want the full-fidelity 20", best)
	}
	// All-low-fidelity traces still answer (fallback).
	lowOnly := Trace{{Perf: 5, Fidelity: 0.5}, {Perf: 7, Fidelity: 0.5}}
	if best := lowOnly.Best(Maximize); best.Perf != 7 {
		t.Fatalf("low-only Best = %+v, want 7", best)
	}
}

// fakeFidCache implements FidelityExternalCache and records routing.
type fakeFidCache struct {
	lookups, lookupAts, measures, measureAts int
	store                                    map[string]float64
}

func (f *fakeFidCache) key(cfg Config, fid float64) string {
	if FullFidelity(fid) {
		return cfg.Key()
	}
	return cfg.Key() + "@low"
}

func (f *fakeFidCache) Lookup(cfg Config) (float64, bool, bool) {
	f.lookups++
	p, ok := f.store[cfg.Key()]
	return p, false, ok
}

func (f *fakeFidCache) Measure(cfg Config, measure func() float64) float64 {
	f.measures++
	p := measure()
	f.store[cfg.Key()] = p
	return p
}

func (f *fakeFidCache) LookupAt(cfg Config, fid float64) (float64, bool, bool) {
	f.lookupAts++
	p, ok := f.store[f.key(cfg, fid)]
	return p, false, ok
}

func (f *fakeFidCache) MeasureAt(cfg Config, fid float64, measure func() float64) float64 {
	f.measureAts++
	p := measure()
	f.store[f.key(cfg, fid)] = p
	return p
}

func TestEvalConfigAtRoutesThroughFidelityExternal(t *testing.T) {
	obj := &countingFidObjective{}
	ev := NewEvaluator(fidelitySpace(), obj)
	ext := &fakeFidCache{store: map[string]float64{}}
	ev.External = ext

	if _, _, err := ev.EvalConfigAt(Config{1, 2}, 0.5); err != nil {
		t.Fatal(err)
	}
	if ext.lookupAts != 1 || ext.measureAts != 1 {
		t.Fatalf("routing: lookupAts=%d measureAts=%d, want 1/1", ext.lookupAts, ext.measureAts)
	}
	if ext.lookups != 0 || ext.measures != 0 {
		t.Fatalf("full-fidelity external path used for a low probe (%d/%d)", ext.lookups, ext.measures)
	}
	if obj.low != 1 {
		t.Fatalf("objective low calls = %d, want 1", obj.low)
	}

	// An External that is NOT fidelity-aware is bypassed for low probes.
	obj2 := &countingFidObjective{}
	ev2 := NewEvaluator(fidelitySpace(), obj2)
	ev2.External = plainExternal{store: map[string]float64{}}
	if _, _, err := ev2.EvalConfigAt(Config{1, 2}, 0.5); err != nil {
		t.Fatal(err)
	}
	if obj2.low != 1 {
		t.Fatalf("plain external: objective low calls = %d, want 1 (direct measurement)", obj2.low)
	}
}

type plainExternal struct{ store map[string]float64 }

func (p plainExternal) Lookup(cfg Config) (float64, bool, bool) {
	v, ok := p.store[cfg.Key()]
	return v, false, ok
}

func (p plainExternal) Measure(cfg Config, measure func() float64) float64 {
	v := measure()
	p.store[cfg.Key()] = v
	return v
}
