package search

import (
	"fmt"
	"math/big"

	"harmony/internal/stats"
)

// Exhaustive measures every configuration in the space and returns the full
// trace. It refuses spaces larger than limit configurations (guarding
// against the 2^1000 spaces the paper warns about). A limit of 0 means
// 1,000,000.
func Exhaustive(space *Space, obj Objective, dir Direction, limit int) (*Result, error) {
	if limit == 0 {
		limit = 1_000_000
	}
	if space.Size().Cmp(big.NewInt(int64(limit))) > 0 {
		return nil, fmt.Errorf("search: exhaustive over %v configurations exceeds limit %d", space.Size(), limit)
	}
	ev := NewEvaluator(space, obj)
	space.EachConfig(func(cfg Config) bool {
		_, _, err := ev.EvalConfig(cfg)
		return err == nil
	})
	tr := ev.Trace()
	best := tr.Best(dir)
	return &Result{
		BestConfig: best.Config.Clone(),
		BestPerf:   best.Perf,
		Trace:      tr,
		Evals:      ev.Count(),
		Converged:  true,
	}, nil
}

// RandomSearch measures n uniformly random configurations — the naive
// baseline a tuning system must beat.
func RandomSearch(space *Space, obj Objective, dir Direction, n int, rng *stats.RNG) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("search: RandomSearch with non-positive n")
	}
	ev := NewEvaluator(space, obj)
	ev.MaxEvals = n
	// Bound attempts so a space smaller than n cannot loop forever on
	// cache hits.
	for tries := 0; ev.Count() < n && tries < 50*n; tries++ {
		cfg := make(Config, space.Dim())
		for i, p := range space.Params {
			steps := p.NumValues()
			cfg[i] = p.Min + rng.Intn(steps)*p.Step
		}
		if _, _, err := ev.EvalConfig(cfg); err == ErrBudget {
			break
		} else if err != nil {
			return nil, err
		}
	}
	tr := ev.Trace()
	if len(tr) == 0 {
		return &Result{Trace: tr}, nil
	}
	best := tr.Best(dir)
	return &Result{
		BestConfig: best.Config.Clone(),
		BestPerf:   best.Perf,
		Trace:      tr,
		Evals:      ev.Count(),
		Converged:  true,
	}, nil
}
