package search

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEvalBatchSequentialMatchesEval(t *testing.T) {
	s, obj := quadSpace()
	evA := NewEvaluator(s, obj)
	evB := NewEvaluator(s, obj)
	pts := [][]float64{{10, 20, 30}, {40, 50, 60}, {10, 20, 30}, {5, 5, 5}}
	cfgs, perfs, err := evA.EvalBatch(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		cfg, perf, err := evB.Eval(pt)
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.Equal(cfgs[i]) || perf != perfs[i] {
			t.Fatalf("batch[%d] = %v/%v, sequential %v/%v", i, cfgs[i], perfs[i], cfg, perf)
		}
	}
	// The duplicate point must not cost an extra measurement.
	if evA.Count() != 3 {
		t.Errorf("Count = %d, want 3 (one duplicate)", evA.Count())
	}
}

func TestEvalBatchParallelDeterministic(t *testing.T) {
	s, obj := quadSpace()
	pts := [][]float64{
		{10, 20, 30}, {40, 50, 60}, {70, 10, 90}, {10, 20, 30}, {5, 5, 5},
	}
	serial := NewEvaluator(s, obj)
	sc, sp, err := serial.EvalBatch(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	par := NewEvaluator(s, obj)
	pc, pp, err := par.EvalBatch(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc) != len(pc) {
		t.Fatalf("lengths differ: %d vs %d", len(sc), len(pc))
	}
	for i := range sc {
		if !sc[i].Equal(pc[i]) || sp[i] != pp[i] {
			t.Fatalf("parallel result %d differs: %v/%v vs %v/%v", i, pc[i], pp[i], sc[i], sp[i])
		}
	}
	// The traces must be identical (committed in input order).
	st, pt := serial.Trace(), par.Trace()
	for i := range st {
		if !st[i].Config.Equal(pt[i].Config) {
			t.Fatalf("trace order differs at %d: %v vs %v", i, pt[i].Config, st[i].Config)
		}
	}
}

func TestEvalBatchActuallyConcurrent(t *testing.T) {
	s := MustSpace(Param{Name: "x", Min: 0, Max: 100, Step: 1, Default: 0})
	var inflight, maxInflight int32
	obj := ObjectiveFunc(func(c Config) float64 {
		cur := atomic.AddInt32(&inflight, 1)
		for {
			max := atomic.LoadInt32(&maxInflight)
			if cur <= max || atomic.CompareAndSwapInt32(&maxInflight, max, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		atomic.AddInt32(&inflight, -1)
		return float64(c[0])
	})
	ev := NewEvaluator(s, obj)
	pts := make([][]float64, 8)
	for i := range pts {
		pts[i] = []float64{float64(i * 10)}
	}
	if _, _, err := ev.EvalBatch(pts, 4); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&maxInflight); got < 2 {
		t.Errorf("max concurrent measurements = %d, want >= 2", got)
	}
	if got := atomic.LoadInt32(&maxInflight); got > 4 {
		t.Errorf("max concurrent measurements = %d, want <= 4 workers", got)
	}
}

func TestEvalBatchBudgetTruncation(t *testing.T) {
	s := MustSpace(Param{Name: "x", Min: 0, Max: 100, Step: 1, Default: 0})
	ev := NewEvaluator(s, ObjectiveFunc(func(c Config) float64 { return float64(c[0]) }))
	ev.MaxEvals = 2
	pts := [][]float64{{1}, {2}, {3}, {4}}
	cfgs, perfs, err := ev.EvalBatch(pts, 3)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if len(cfgs) != 2 || len(perfs) != 2 {
		t.Fatalf("prefix length = %d, want 2", len(cfgs))
	}
	if cfgs[0][0] != 1 || cfgs[1][0] != 2 {
		t.Errorf("prefix = %v, want first two points", cfgs)
	}
	if ev.Count() != 2 {
		t.Errorf("Count = %d, want 2", ev.Count())
	}
}

func TestEvalBatchUsesCache(t *testing.T) {
	s := MustSpace(Param{Name: "x", Min: 0, Max: 100, Step: 1, Default: 0})
	calls := 0
	var mu sync.Mutex
	ev := NewEvaluator(s, ObjectiveFunc(func(c Config) float64 {
		mu.Lock()
		calls++
		mu.Unlock()
		return float64(c[0])
	}))
	if _, _, err := ev.EvalConfig(Config{5}); err != nil {
		t.Fatal(err)
	}
	_, _, err := ev.EvalBatch([][]float64{{5}, {6}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (config 5 cached)", calls)
	}
	if ev.Hits() == 0 {
		t.Error("cache hit not counted")
	}
}

func TestSynchronizedSerializes(t *testing.T) {
	var inflight, maxInflight int32
	raw := ObjectiveFunc(func(c Config) float64 {
		cur := atomic.AddInt32(&inflight, 1)
		if cur > atomic.LoadInt32(&maxInflight) {
			atomic.StoreInt32(&maxInflight, cur)
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt32(&inflight, -1)
		return 0
	})
	obj := Synchronized(raw)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			obj.Measure(Config{1})
		}()
	}
	wg.Wait()
	if got := atomic.LoadInt32(&maxInflight); got != 1 {
		t.Errorf("max inflight through Synchronized = %d, want 1", got)
	}
}

func TestNelderMeadParallelMatchesSerial(t *testing.T) {
	s, obj := quadSpace()
	serial, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 150, Init: DistributedInit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 150, Init: DistributedInit{}, Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if serial.BestPerf != parallel.BestPerf || !serial.BestConfig.Equal(parallel.BestConfig) {
		t.Errorf("parallel best %v@%v != serial best %v@%v",
			parallel.BestPerf, parallel.BestConfig, serial.BestPerf, serial.BestConfig)
	}
	if serial.Evals != parallel.Evals {
		t.Errorf("parallel evals %d != serial %d", parallel.Evals, serial.Evals)
	}
}

func TestNelderMeadParallelBudgetSmallerThanSimplex(t *testing.T) {
	s, obj := quadSpace()
	res, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 2, Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 2 || res.Converged {
		t.Errorf("truncated parallel run: evals %d converged %v", res.Evals, res.Converged)
	}
}
