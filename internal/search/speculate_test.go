package search

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSpeculateMeasuresWithoutCommitting: a speculation round calls the
// objective but leaves the evaluator untouched — no budget spend, no trace
// entries, no cache pollution — until EvalSpeculated commits a point.
func TestSpeculateMeasuresWithoutCommitting(t *testing.T) {
	s := MustSpace(Param{Name: "x", Min: 0, Max: 100, Step: 1, Default: 0})
	var mu sync.Mutex
	calls := 0
	ev := NewEvaluator(s, ObjectiveFunc(func(c Config) float64 {
		mu.Lock()
		calls++
		mu.Unlock()
		return float64(c[0])
	}))
	ev.MaxEvals = 10

	spec := ev.Speculate([][]float64{{1}, {2}, {3}, {2}}, 4)
	if spec.Len() != 3 {
		t.Errorf("spec.Len() = %d, want 3 (one duplicate coalesced)", spec.Len())
	}
	if calls != 3 {
		t.Errorf("objective calls = %d, want 3", calls)
	}
	if ev.Count() != 0 || len(ev.Trace()) != 0 {
		t.Fatalf("speculation committed: count=%d trace=%d", ev.Count(), len(ev.Trace()))
	}

	// Committing one point spends exactly one budget unit and does not call
	// the objective again.
	cfg, perf, err := ev.EvalSpeculated([]float64{2}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg[0] != 2 || perf != 2 {
		t.Errorf("committed %v/%v, want [2]/2", cfg, perf)
	}
	if calls != 3 {
		t.Errorf("commit re-measured: calls = %d, want 3", calls)
	}
	if ev.Count() != 1 {
		t.Errorf("Count = %d, want 1", ev.Count())
	}

	// A point outside the round falls back to a real evaluation.
	if _, perf, err := ev.EvalSpeculated([]float64{9}, spec); err != nil || perf != 9 {
		t.Fatalf("fallback eval: perf=%v err=%v", perf, err)
	}
	if calls != 4 {
		t.Errorf("fallback did not measure: calls = %d, want 4", calls)
	}
}

// TestSpeculateRespectsBudget: candidates beyond the remaining evaluation
// budget are not measured — the sequential kernel could never commit them,
// so speculating on them would be pure waste.
func TestSpeculateRespectsBudget(t *testing.T) {
	s := MustSpace(Param{Name: "x", Min: 0, Max: 100, Step: 1, Default: 0})
	var mu sync.Mutex
	calls := 0
	ev := NewEvaluator(s, ObjectiveFunc(func(c Config) float64 {
		mu.Lock()
		calls++
		mu.Unlock()
		return float64(c[0])
	}))
	ev.MaxEvals = 1
	spec := ev.Speculate([][]float64{{1}, {2}, {3}, {4}}, 4)
	if spec.Len() != 1 || calls != 1 {
		t.Errorf("spec.Len()=%d calls=%d, want 1/1 under MaxEvals=1", spec.Len(), calls)
	}
	if _, _, err := ev.EvalSpeculated([]float64{1}, spec); err != nil {
		t.Fatal(err)
	}
	// Budget exhausted: committing another speculated value must refuse.
	spec2 := &Speculation{perfs: map[string]float64{Config{2}.Key(): 2}}
	if _, _, err := ev.EvalSpeculated([]float64{2}, spec2); !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

// TestSpeculativeKernelEventStreamIdentical pins the tentpole determinism
// guarantee at full strength: the speculative parallel kernel must produce
// the exact same typed event stream — evaluations, simplex operations,
// convergence decision, in order — as the sequential kernel, for a
// deterministic objective whose measurement latency is adversarial (later
// candidates finish first).
func TestSpeculativeKernelEventStreamIdentical(t *testing.T) {
	targets := [][]float64{
		{60, 30, 75},
		{5, 95, 40},
		{88, 12, 50},
	}
	for _, target := range targets {
		s := MustSpace(
			Param{Name: "x", Min: 0, Max: 100, Step: 1, Default: 50},
			Param{Name: "y", Min: 0, Max: 100, Step: 1, Default: 50},
			Param{Name: "z", Min: 0, Max: 100, Step: 1, Default: 50},
		)
		obj := ObjectiveFunc(func(c Config) float64 {
			sum := 0.0
			for i, v := range c {
				d := float64(v) - target[i]
				sum += d * d
			}
			// Adversarial latency: better points take longer, so speculation
			// completion order inverts probe order.
			time.Sleep(time.Duration(100-int(sum/300)%100) * 10 * time.Microsecond)
			return 1000 - sum/10
		})

		run := func(workers int) ([]Event, *Result) {
			var tr CollectTracer
			res, err := NelderMead(s, obj, NelderMeadOptions{
				Direction: Maximize, MaxEvals: 120, Init: DistributedInit{},
				Parallel: workers, Tracer: &tr,
			})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			return tr.Events, res
		}
		seq, seqRes := run(1)
		par, parRes := run(4)

		if seqRes.BestPerf != parRes.BestPerf || !seqRes.BestConfig.Equal(parRes.BestConfig) {
			t.Fatalf("target %v: parallel best %v@%v != serial %v@%v",
				target, parRes.BestPerf, parRes.BestConfig, seqRes.BestPerf, seqRes.BestConfig)
		}
		if seqRes.Evals != parRes.Evals {
			t.Fatalf("target %v: parallel evals %d != serial %d", target, parRes.Evals, seqRes.Evals)
		}
		if len(seq) != len(par) {
			t.Fatalf("target %v: event counts differ: serial %d, parallel %d", target, len(seq), len(par))
		}
		for i := range seq {
			a, b := seq[i], par[i]
			if a.Type != b.Type || a.Op != b.Op || a.Iter != b.Iter ||
				a.Index != b.Index || a.Perf != b.Perf || a.Cached != b.Cached ||
				!a.Config.Equal(b.Config) {
				t.Fatalf("target %v: event %d differs:\n  serial   %+v\n  parallel %+v", target, i, a, b)
			}
		}
	}
}

// panicObjective panics on one specific configuration value and measures
// everything else.
func panicObjective(panicAt int) Objective {
	return ObjectiveFunc(func(c Config) float64 {
		if c[0] == panicAt {
			panic(errSentinel)
		}
		time.Sleep(time.Millisecond)
		return float64(c[0])
	})
}

var errSentinel = errors.New("measurement goroutine exploded")

// TestEvalBatchWorkerPanicRecovered: a panic inside a parallel measurement
// goroutine must unwind the *caller's* goroutine (the server depends on this
// for partial-trace deposits on disconnect) instead of crashing the process.
// Every cleanly measured point — before *and* after the panicking index — is
// committed in input order: the panic path only fires when a session is
// dying, and the deposited partial trace should keep everything the client
// paid to measure.
func TestEvalBatchWorkerPanicRecovered(t *testing.T) {
	s := MustSpace(Param{Name: "x", Min: 0, Max: 100, Step: 1, Default: 0})
	ev := NewEvaluator(s, panicObjective(30))
	pts := [][]float64{{10}, {20}, {30}, {40}, {50}}

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		ev.EvalBatch(pts, 4)
	}()
	err, ok := recovered.(error)
	if !ok || !errors.Is(err, errSentinel) {
		t.Fatalf("recovered %v, want the objective's panic value", recovered)
	}

	// All clean measurements are committed in input order; only the
	// panicking index is missing.
	tr := ev.Trace()
	want := []int{10, 20, 40, 50}
	if len(tr) != len(want) {
		t.Fatalf("trace after panic = %+v, want the clean results %v", tr, want)
	}
	for i, w := range want {
		if tr[i].Config[0] != w {
			t.Fatalf("trace[%d] = %v, want %d (clean results in input order)", i, tr[i].Config, w)
		}
	}
	// The evaluator is still usable: clean results are cached, new points
	// work.
	if _, perf, err := ev.Eval([]float64{60}); err != nil || perf != 60 {
		t.Fatalf("post-panic eval: perf=%v err=%v", perf, err)
	}
}

// TestSpeculatePanicPropagatesWithoutCommit: a panic during a speculation
// round re-raises on the caller with nothing committed at all (a round that
// never happened).
func TestSpeculatePanicPropagatesWithoutCommit(t *testing.T) {
	s := MustSpace(Param{Name: "x", Min: 0, Max: 100, Step: 1, Default: 0})
	ev := NewEvaluator(s, panicObjective(20))

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		ev.Speculate([][]float64{{10}, {20}, {30}}, 4)
	}()
	err, ok := recovered.(error)
	if !ok || !errors.Is(err, errSentinel) {
		t.Fatalf("recovered %v, want the objective's panic value", recovered)
	}
	if ev.Count() != 0 || len(ev.Trace()) != 0 {
		t.Fatalf("speculation panic committed state: count=%d trace=%d", ev.Count(), len(ev.Trace()))
	}
}
