package search

import "fmt"

// Powell implements the direction-set method the paper's related work
// contrasts with the Active Harmony kernel (§7): break the N-dimensional
// minimization into N one-dimensional searches, and on subsequent rounds
// replace the direction of largest improvement with the aggregate move so
// the search can follow valleys not aligned with the axes.
//
// The one-dimensional searches use golden-section reduction over the
// parameter's (continuous) range, with every probe snapped to the grid —
// the same discrete adaptation the simplex kernel uses. Like the paper
// notes, the method explores one direction at a time and cannot model
// parameter interactions within a round.
type PowellOptions struct {
	Direction Direction
	// MaxEvals bounds real measurements (default 200).
	MaxEvals int
	// MaxRounds bounds full passes over the direction set (default 8).
	MaxRounds int
	// RelTol stops when a full round improves the best value by less than
	// this relative amount (default 1e-3).
	RelTol float64
}

func (o *PowellOptions) fill() {
	if o.MaxEvals == 0 {
		o.MaxEvals = 200
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 8
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-3
	}
}

// Powell runs the direction-set search starting from the space's default
// configuration.
func Powell(space *Space, obj Objective, opts PowellOptions) (*Result, error) {
	opts.fill()
	ev := NewEvaluator(space, obj)
	ev.MaxEvals = opts.MaxEvals
	return PowellWithEvaluator(space, ev, opts)
}

// PowellWithEvaluator runs the search against a caller-managed evaluator.
func PowellWithEvaluator(space *Space, ev *Evaluator, opts PowellOptions) (*Result, error) {
	opts.fill()
	dim := space.Dim()
	dir := opts.Direction

	// Direction set starts as the coordinate axes (scaled to each range).
	dirs := make([][]float64, dim)
	for i := range dirs {
		d := make([]float64, dim)
		d[i] = float64(space.Params[i].Max-space.Params[i].Min) / 2
		if d[i] == 0 {
			d[i] = 1
		}
		dirs[i] = d
	}

	cur := space.Continuous(space.DefaultConfig())
	_, curPerf, err := ev.Eval(cur)
	if err != nil {
		return nil, fmt.Errorf("search: Powell initial evaluation: %w", err)
	}

	result := func(converged bool) *Result {
		tr := ev.Trace()
		if len(tr) == 0 {
			return &Result{Trace: tr, Converged: converged}
		}
		best := tr.Best(dir)
		return &Result{
			BestConfig: best.Config.Clone(),
			BestPerf:   best.Perf,
			Trace:      tr,
			Evals:      ev.Count(),
			Converged:  converged,
		}
	}

	for round := 0; round < opts.MaxRounds; round++ {
		roundStart := append([]float64(nil), cur...)
		roundStartPerf := curPerf
		bestGain, bestDir := 0.0, -1

		for di, d := range dirs {
			newPt, newPerf, ok := lineSearch(space, ev, cur, d, curPerf, dir)
			if !ok {
				return result(false), nil // budget exhausted
			}
			gain := newPerf - curPerf
			if dir == Minimize {
				gain = -gain
			}
			if gain > bestGain {
				bestGain, bestDir = gain, di
			}
			cur, curPerf = newPt, newPerf
		}

		// Replace the most productive direction with the aggregate move.
		aggregate := make([]float64, dim)
		moved := false
		for j := range aggregate {
			aggregate[j] = cur[j] - roundStart[j]
			if aggregate[j] != 0 {
				moved = true
			}
		}
		if bestDir >= 0 && moved {
			dirs[bestDir] = aggregate
		}

		improvement := curPerf - roundStartPerf
		if dir == Minimize {
			improvement = -improvement
		}
		scale := abs(roundStartPerf) + abs(curPerf)
		if scale == 0 || improvement/scale < opts.RelTol {
			return result(true), nil
		}
	}
	return result(true), nil
}

// lineSearch performs a golden-section search from pt along direction d,
// bounded by the box. Returns the best point found (possibly pt itself).
// ok is false when the evaluation budget ran out.
func lineSearch(space *Space, ev *Evaluator, pt []float64, d []float64, ptPerf float64, dir Direction) ([]float64, float64, bool) {
	// Find the admissible parameter interval [tLo, tHi] keeping pt + t·d in
	// the box.
	tLo, tHi := -1e18, 1e18
	for i, p := range space.Params {
		if d[i] == 0 {
			continue
		}
		lo := (float64(p.Min) - pt[i]) / d[i]
		hi := (float64(p.Max) - pt[i]) / d[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo > tLo {
			tLo = lo
		}
		if hi < tHi {
			tHi = hi
		}
	}
	if tLo > tHi {
		return pt, ptPerf, true // no admissible move
	}

	at := func(t float64) []float64 {
		out := make([]float64, len(pt))
		for i := range pt {
			out[i] = pt[i] + t*d[i]
		}
		return clampPoint(space, out)
	}
	probe := func(t float64) (float64, bool) {
		_, perf, err := ev.Eval(at(t))
		if err != nil {
			return 0, false
		}
		return perf, true
	}

	const phi = 0.6180339887498949
	a, b := tLo, tHi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, ok := probe(x1)
	if !ok {
		return pt, ptPerf, false
	}
	f2, ok := probe(x2)
	if !ok {
		return pt, ptPerf, false
	}
	// Shrink until the interval is below one grid step in every moving dim.
	for iter := 0; iter < 40 && !intervalResolved(space, d, a, b); iter++ {
		if dir.Better(f1, f2) {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			if f1, ok = probe(x1); !ok {
				return pt, ptPerf, false
			}
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			if f2, ok = probe(x2); !ok {
				return pt, ptPerf, false
			}
		}
	}
	bestT, bestF := x1, f1
	if dir.Better(f2, f1) {
		bestT, bestF = x2, f2
	}
	if dir.Better(bestF, ptPerf) {
		return at(bestT), bestF, true
	}
	return pt, ptPerf, true
}

// intervalResolved reports whether [a, b] along direction d spans less than
// one grid step in every dimension that d moves.
func intervalResolved(space *Space, d []float64, a, b float64) bool {
	for i, p := range space.Params {
		if d[i] == 0 {
			continue
		}
		span := (b - a) * d[i]
		if span < 0 {
			span = -span
		}
		if span >= float64(p.Step) {
			return false
		}
	}
	return true
}
