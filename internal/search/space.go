// Package search implements the Active Harmony tuning kernel: discrete
// integer parameter spaces, a Nelder–Mead simplex search adapted to those
// spaces (paper §2), the original extreme-corner and the improved
// evenly-distributed initial simplex strategies (paper §4.1), exhaustive and
// random baselines, and the evaluation bookkeeping (traces, convergence and
// oscillation metrics) that the paper's tables report.
package search

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
	"strings"
)

// Param describes one tunable parameter as the paper's prioritizing tool
// specifies it (§3): minimum, maximum, default value, and the distance
// between two neighbour values (Step).
type Param struct {
	Name    string
	Min     int
	Max     int
	Step    int
	Default int
}

// Validate reports whether the parameter definition is self-consistent.
func (p Param) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("search: parameter with empty name")
	}
	if p.Step <= 0 {
		return fmt.Errorf("search: parameter %q has non-positive step %d", p.Name, p.Step)
	}
	if p.Max < p.Min {
		return fmt.Errorf("search: parameter %q has max %d < min %d", p.Name, p.Max, p.Min)
	}
	if p.Default < p.Min || p.Default > p.Max {
		return fmt.Errorf("search: parameter %q default %d outside [%d, %d]", p.Name, p.Default, p.Min, p.Max)
	}
	return nil
}

// NumValues returns the number of grid points the parameter can take.
func (p Param) NumValues() int {
	return (p.Max-p.Min)/p.Step + 1
}

// Snap returns the grid value nearest to x, clamped into [Min, Max].
func (p Param) Snap(x float64) int {
	if x <= float64(p.Min) {
		return p.Min
	}
	if x >= float64(p.Max) {
		return p.Max
	}
	steps := math.Round((x - float64(p.Min)) / float64(p.Step))
	v := p.Min + int(steps)*p.Step
	if v > p.Max {
		v = p.Max
	}
	return v
}

// Normalize maps a parameter value into [0, 1] (the paper's v′ scaling).
func (p Param) Normalize(v int) float64 {
	if p.Max == p.Min {
		return 0
	}
	return float64(v-p.Min) / float64(p.Max-p.Min)
}

// Values returns every grid value of the parameter in ascending order.
func (p Param) Values() []int {
	out := make([]int, 0, p.NumValues())
	for v := p.Min; v <= p.Max; v += p.Step {
		out = append(out, v)
	}
	return out
}

// Config is one point in a parameter space: the i-th entry is the value of
// the i-th parameter.
type Config []int

// Clone returns an independent copy of the configuration.
func (c Config) Clone() Config {
	return append(Config(nil), c...)
}

// Equal reports whether two configurations have identical values.
func (c Config) Equal(other Config) bool {
	if len(c) != len(other) {
		return false
	}
	for i := range c {
		if c[i] != other[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string form usable as a map key.
func (c Config) Key() string {
	var b strings.Builder
	b.Grow(8 * len(c)) // one allocation for typical values
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Space is an ordered set of tunable parameters.
type Space struct {
	Params []Param
}

// NewSpace validates the parameter list and returns a Space.
func NewSpace(params ...Param) (*Space, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("search: space with no parameters")
	}
	seen := map[string]bool{}
	for _, p := range params {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("search: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return &Space{Params: params}, nil
}

// MustSpace is NewSpace that panics on error, for tests and fixed tables.
func MustSpace(params ...Param) *Space {
	s, err := NewSpace(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the number of parameters.
func (s *Space) Dim() int { return len(s.Params) }

// Size returns the total number of configurations in the space. The paper
// motivates prioritization with spaces like 2^1000, so the count is exact
// (math/big) rather than a float.
func (s *Space) Size() *big.Int {
	total := big.NewInt(1)
	for _, p := range s.Params {
		total.Mul(total, big.NewInt(int64(p.NumValues())))
	}
	return total
}

// DefaultConfig returns the configuration with every parameter at its
// default value.
func (s *Space) DefaultConfig() Config {
	cfg := make(Config, len(s.Params))
	for i, p := range s.Params {
		cfg[i] = p.Default
	}
	return cfg
}

// Snap maps a continuous point onto the nearest valid configuration, the
// discrete adaptation of the simplex method described in §2 of the paper.
func (s *Space) Snap(pt []float64) Config {
	if len(pt) != len(s.Params) {
		panic("search: Snap with wrong dimensionality")
	}
	cfg := make(Config, len(pt))
	for i, p := range s.Params {
		cfg[i] = p.Snap(pt[i])
	}
	return cfg
}

// Continuous converts a configuration to a float point.
func (s *Space) Continuous(cfg Config) []float64 {
	if len(cfg) != len(s.Params) {
		panic("search: Continuous with wrong dimensionality")
	}
	pt := make([]float64, len(cfg))
	for i, v := range cfg {
		pt[i] = float64(v)
	}
	return pt
}

// Contains reports whether cfg lies on the space's grid.
func (s *Space) Contains(cfg Config) bool {
	if len(cfg) != len(s.Params) {
		return false
	}
	for i, p := range s.Params {
		v := cfg[i]
		if v < p.Min || v > p.Max || (v-p.Min)%p.Step != 0 {
			return false
		}
	}
	return true
}

// Normalized maps a configuration into the unit hypercube.
func (s *Space) Normalized(cfg Config) []float64 {
	out := make([]float64, len(cfg))
	for i, p := range s.Params {
		out[i] = p.Normalize(cfg[i])
	}
	return out
}

// Names returns the parameter names in order.
func (s *Space) Names() []string {
	out := make([]string, len(s.Params))
	for i, p := range s.Params {
		out[i] = p.Name
	}
	return out
}

// Index returns the position of the named parameter, or -1.
func (s *Space) Index(name string) int {
	for i, p := range s.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Subspace returns a space over only the parameters at the given indices,
// plus an embedding that maps a sub-configuration back into the full space
// with every other parameter fixed at base. This implements the paper's
// "tune only the n most sensitive parameters, leave the rest at defaults"
// experiments (Figures 6 and 9).
func (s *Space) Subspace(indices []int, base Config) (*Space, func(Config) Config, error) {
	if len(base) != len(s.Params) {
		return nil, nil, fmt.Errorf("search: Subspace base has %d values, want %d", len(base), len(s.Params))
	}
	if len(indices) == 0 {
		return nil, nil, fmt.Errorf("search: Subspace with no indices")
	}
	seen := map[int]bool{}
	params := make([]Param, 0, len(indices))
	for _, idx := range indices {
		if idx < 0 || idx >= len(s.Params) {
			return nil, nil, fmt.Errorf("search: Subspace index %d out of range", idx)
		}
		if seen[idx] {
			return nil, nil, fmt.Errorf("search: Subspace duplicate index %d", idx)
		}
		seen[idx] = true
		params = append(params, s.Params[idx])
	}
	sub, err := NewSpace(params...)
	if err != nil {
		return nil, nil, err
	}
	fixed := base.Clone()
	embed := func(c Config) Config {
		full := fixed.Clone()
		for i, idx := range indices {
			full[idx] = c[i]
		}
		return full
	}
	return sub, embed, nil
}

// EachConfig calls fn for every configuration in the space in lexicographic
// order, stopping early if fn returns false. Intended for exhaustive search
// over small spaces (e.g. the Figure 4 distribution sweep).
func (s *Space) EachConfig(fn func(Config) bool) {
	cfg := make(Config, len(s.Params))
	for i, p := range s.Params {
		cfg[i] = p.Min
	}
	for {
		if !fn(cfg.Clone()) {
			return
		}
		// Odometer increment.
		i := len(cfg) - 1
		for i >= 0 {
			cfg[i] += s.Params[i].Step
			if cfg[i] <= s.Params[i].Max {
				break
			}
			cfg[i] = s.Params[i].Min
			i--
		}
		if i < 0 {
			return
		}
	}
}
