package search

import (
	"testing"
)

func TestPowellFindsInteriorOptimum(t *testing.T) {
	s, obj := quadSpace()
	res, err := Powell(s, obj, PowellOptions{Direction: Maximize, MaxEvals: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf < 985 {
		t.Errorf("Powell best = %v at %v, want >= 985", res.BestPerf, res.BestConfig)
	}
	if res.Evals != len(res.Trace) {
		t.Errorf("Evals %d != trace length %d", res.Evals, len(res.Trace))
	}
}

func TestPowellMinimize(t *testing.T) {
	s := MustSpace(
		Param{Name: "x", Min: -50, Max: 50, Step: 1, Default: 40},
		Param{Name: "y", Min: -50, Max: 50, Step: 1, Default: -40},
	)
	obj := ObjectiveFunc(func(c Config) float64 {
		dx, dy := float64(c[0]-12), float64(c[1]+7)
		return dx*dx + dy*dy
	})
	res, err := Powell(s, obj, PowellOptions{Direction: Minimize, MaxEvals: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf > 5 {
		t.Errorf("Powell minimize best = %v at %v, want near 0", res.BestPerf, res.BestConfig)
	}
}

func TestPowellFollowsRotatedValley(t *testing.T) {
	// A narrow valley at 45° to the axes — the direction-update step is
	// what lets Powell make progress here.
	s := MustSpace(
		Param{Name: "x", Min: 0, Max: 200, Step: 1, Default: 10},
		Param{Name: "y", Min: 0, Max: 200, Step: 1, Default: 190},
	)
	obj := ObjectiveFunc(func(c Config) float64 {
		u := float64(c[0]+c[1]) - 200 // along the valley
		v := float64(c[0] - c[1])     // across the valley (steep)
		return -(u*u + 25*v*v)
	})
	res, err := Powell(s, obj, PowellOptions{Direction: Maximize, MaxEvals: 400, MaxRounds: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf < -2000 {
		t.Errorf("Powell valley best = %v at %v", res.BestPerf, res.BestConfig)
	}
}

func TestPowellRespectsBudget(t *testing.T) {
	s, obj := quadSpace()
	res, err := Powell(s, obj, PowellOptions{Direction: Maximize, MaxEvals: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals > 15 {
		t.Errorf("Evals = %d, want <= 15", res.Evals)
	}
	if len(res.BestConfig) == 0 {
		t.Error("no best config despite measurements")
	}
}

func TestPowellAllConfigsOnGrid(t *testing.T) {
	s, obj := quadSpace()
	res, err := Powell(s, obj, PowellOptions{Direction: Maximize, MaxEvals: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Trace {
		if !s.Contains(e.Config) {
			t.Fatalf("off-grid config %v in trace", e.Config)
		}
	}
}

func TestPowellSingleValueDimension(t *testing.T) {
	// A frozen dimension must not break the line searches.
	s := MustSpace(
		Param{Name: "x", Min: 0, Max: 100, Step: 1, Default: 50},
		Param{Name: "frozen", Min: 7, Max: 7, Step: 1, Default: 7},
	)
	obj := ObjectiveFunc(func(c Config) float64 {
		d := float64(c[0] - 33)
		return -d * d
	})
	res, err := Powell(s, obj, PowellOptions{Direction: Maximize, MaxEvals: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestConfig[0] != 33 || res.BestConfig[1] != 7 {
		t.Errorf("best = %v, want [33 7]", res.BestConfig)
	}
}

func TestPowellConstantObjective(t *testing.T) {
	s, _ := quadSpace()
	res, err := Powell(s, ObjectiveFunc(func(Config) float64 { return 5 }), PowellOptions{
		Direction: Maximize, MaxEvals: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("constant objective did not converge")
	}
	if res.BestPerf != 5 {
		t.Errorf("best = %v, want 5", res.BestPerf)
	}
}

func TestPowellWithEvaluatorSharesBudget(t *testing.T) {
	s, obj := quadSpace()
	ev := NewEvaluator(s, obj)
	ev.MaxEvals = 50
	if _, _, err := ev.EvalConfig(Config{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	res, err := PowellWithEvaluator(s, ev, PowellOptions{Direction: Maximize, MaxEvals: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals > 50 {
		t.Errorf("shared budget exceeded: %d", res.Evals)
	}
}
