package search

import (
	"testing"
)

// wideSpace is an 8-parameter space with an interior optimum — wide enough
// that a parallel session takes the multi-point kernel (dim/2 = 4 > 1).
func wideSpace() (*Space, Objective) {
	params := make([]Param, 8)
	names := [...]string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := range params {
		params[i] = Param{Name: names[i], Min: 0, Max: 100, Step: 1, Default: 50}
	}
	s := MustSpace(params...)
	target := []float64{60, 30, 75, 20, 45, 80, 10, 55}
	obj := ObjectiveFunc(func(c Config) float64 {
		sum := 0.0
		for i, v := range c {
			d := float64(v) - target[i]
			sum += d * d
		}
		return 1000 - sum/10
	})
	return s, obj
}

func TestPBestWidth(t *testing.T) {
	cases := []struct {
		parallel, pbest, dim, want int
	}{
		{0, 0, 10, 1},  // sequential
		{1, 0, 10, 1},  // sequential
		{1, 4, 10, 1},  // PBest cannot force parallelism
		{4, 0, 10, 2},  // default: Parallel/2
		{8, 0, 10, 4},  // default: Parallel/2
		{20, 0, 10, 5}, // capped at dim/2
		{4, 1, 10, 1},  // PBest=1 forces the speculative kernel
		{4, 3, 10, 3},  // explicit override
		{4, 8, 10, 4},  // override capped at Parallel
		{8, 9, 10, 5},  // override capped at dim/2
		{4, 0, 3, 1},   // narrow space: dim/2 = 1
		{8, 4, 2, 1},   // narrow space: dim/2 = 1
	}
	for _, c := range cases {
		o := NelderMeadOptions{Parallel: c.parallel, PBest: c.pbest}
		if got := o.pbest(c.dim); got != c.want {
			t.Errorf("pbest(Parallel=%d, PBest=%d, dim=%d) = %d, want %d",
				c.parallel, c.pbest, c.dim, got, c.want)
		}
	}
}

func TestMultiPointDeterministic(t *testing.T) {
	s, obj := wideSpace()
	run := func() *Result {
		res, err := NelderMead(s, obj, NelderMeadOptions{
			Direction: Maximize, MaxEvals: 200, Init: DistributedInit{}, Parallel: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Evals != b.Evals || len(a.Trace) != len(b.Trace) {
		t.Fatalf("run-to-run evals differ: %d vs %d", a.Evals, b.Evals)
	}
	for i := range a.Trace {
		if !a.Trace[i].Config.Equal(b.Trace[i].Config) || a.Trace[i].Perf != b.Trace[i].Perf {
			t.Fatalf("trace diverges at %d: %v@%v vs %v@%v", i,
				a.Trace[i].Perf, a.Trace[i].Config, b.Trace[i].Perf, b.Trace[i].Config)
		}
	}
	if a.BestPerf != b.BestPerf || !a.BestConfig.Equal(b.BestConfig) {
		t.Errorf("best differs: %v@%v vs %v@%v", a.BestPerf, a.BestConfig, b.BestPerf, b.BestConfig)
	}
}

func TestMultiPointFindsInteriorOptimum(t *testing.T) {
	s, obj := wideSpace()
	res, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 400, Init: DistributedInit{}, Parallel: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf < 950 {
		t.Errorf("BestPerf = %v at %v, want >= 950", res.BestPerf, res.BestConfig)
	}
	if res.Evals != len(res.Trace) {
		t.Errorf("Evals = %d, trace len = %d", res.Evals, len(res.Trace))
	}
}

// TestMultiPointNarrowSpaceMatchesSerial locks in the fallback: spaces of
// three or fewer parameters cap the multi-point width at 1, so a parallel
// session runs the trajectory-preserving speculative kernel and reproduces
// the sequential result exactly.
func TestMultiPointNarrowSpaceMatchesSerial(t *testing.T) {
	s, obj := quadSpace() // 3 parameters
	serial, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 150, Init: DistributedInit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 150, Init: DistributedInit{}, Parallel: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Evals != parallel.Evals || serial.BestPerf != parallel.BestPerf {
		t.Fatalf("narrow-space parallel diverged: evals %d vs %d, best %v vs %v",
			parallel.Evals, serial.Evals, parallel.BestPerf, serial.BestPerf)
	}
	for i := range serial.Trace {
		if !serial.Trace[i].Config.Equal(parallel.Trace[i].Config) {
			t.Fatalf("trace diverges at %d", i)
		}
	}
}

// TestMultiPointPBestOneMatchesSerial locks in the PBest=1 escape hatch on
// a wide space: forcing width 1 keeps the sequential trajectory even when
// the window would otherwise select the multi-point kernel.
func TestMultiPointPBestOneMatchesSerial(t *testing.T) {
	s, obj := wideSpace()
	serial, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 200, Init: DistributedInit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	forced, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 200, Init: DistributedInit{}, Parallel: 8, PBest: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Evals != forced.Evals || serial.BestPerf != forced.BestPerf {
		t.Fatalf("PBest=1 diverged: evals %d vs %d, best %v vs %v",
			forced.Evals, serial.Evals, forced.BestPerf, serial.BestPerf)
	}
}

func TestMultiPointRespectsBudget(t *testing.T) {
	s, obj := wideSpace()
	for _, budget := range []int{5, 17, 40} {
		res, err := NelderMead(s, obj, NelderMeadOptions{
			Direction: Maximize, MaxEvals: budget, Init: DistributedInit{}, Parallel: 4,
		})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if res.Evals > budget {
			t.Errorf("budget %d: %d evals", budget, res.Evals)
		}
		if res.Evals != len(res.Trace) {
			t.Errorf("budget %d: Evals = %d, trace len = %d", budget, res.Evals, len(res.Trace))
		}
	}
}

// TestMultiPointPolishPhase verifies that leftover budget after the coarse
// walk converges funds a polish restart, announced by an EventPhase
// "polish" marker, and that the polish never worsens the best.
func TestMultiPointPolishPhase(t *testing.T) {
	s, obj := wideSpace()
	var events []Event
	res, err := NelderMead(s, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 1000, Init: DistributedInit{}, Parallel: 8,
		Tracer: TracerFunc(func(e Event) { events = append(events, e) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	polished := false
	for _, e := range events {
		if e.Type == EventPhase && e.Op == "polish" {
			polished = true
		}
	}
	if !polished {
		t.Fatalf("no polish phase in %d events despite %d leftover evals",
			len(events), 1000-res.Evals)
	}
	if !res.Converged {
		t.Error("polished run not marked converged")
	}
	// The polish restarts the speculative kernel around the incumbent
	// best, so the result can only hold or improve it.
	best := res.Trace.Best(Maximize)
	if res.BestPerf != best.Perf {
		t.Errorf("BestPerf %v != trace best %v", res.BestPerf, best.Perf)
	}
}
