package search

import (
	"math"
	"sync"
	"testing"
	"time"
)

func tracerSpace(t *testing.T) *Space {
	t.Helper()
	return MustSpace(
		Param{Name: "a", Min: 0, Max: 50, Step: 1, Default: 0},
		Param{Name: "b", Min: 0, Max: 50, Step: 1, Default: 0},
	)
}

// slowObjective jitters measurement latency inversely with the input so
// later batch entries finish before earlier ones: the commit order (and so
// the event order) must still follow input order.
func slowObjective(mu *sync.Mutex, calls *int) Objective {
	return ObjectiveFunc(func(cfg Config) float64 {
		mu.Lock()
		*calls++
		mu.Unlock()
		time.Sleep(time.Duration(50-cfg[0]) * 200 * time.Microsecond)
		return float64(cfg[0]*100 + cfg[1])
	})
}

// TestTracerOrderingUnderParallel pins the determinism guarantee: for the
// same batch, the tracer sees identical event sequences whether the
// evaluator runs sequentially or with many workers — completion order must
// never leak into the stream.
func TestTracerOrderingUnderParallel(t *testing.T) {
	pts := [][]float64{
		{40, 1}, {2, 2}, {30, 3}, {4, 4}, {20, 5}, {6, 6}, {10, 7}, {8, 8},
		{40, 1}, // duplicate: measured once
	}

	run := func(workers int) []Event {
		var mu sync.Mutex
		calls := 0
		ev := NewEvaluator(tracerSpace(t), slowObjective(&mu, &calls))
		var tr CollectTracer
		ev.Tracer = &tr
		if _, _, err := ev.EvalBatch(pts, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls != 8 {
			t.Fatalf("workers=%d: %d measurements, want 8 (dup must be coalesced)", workers, calls)
		}
		return tr.Events
	}

	seq := run(1)
	par := run(8)

	// Strip times, then compare the streams event by event. The sequential
	// path interleaves the duplicate's cache hit differently (it resolves it
	// at position 9 rather than during the scan), so compare the fresh
	// measurements — the trajectory-bearing events — exactly, and the cache
	// hits as a set.
	fresh := func(events []Event) []Event {
		var out []Event
		for _, e := range events {
			if e.Type == EventEval && !e.Cached {
				out = append(out, e)
			}
		}
		return out
	}
	fs, fp := fresh(seq), fresh(par)
	if len(fs) != 8 || len(fp) != 8 {
		t.Fatalf("fresh events: seq=%d par=%d, want 8", len(fs), len(fp))
	}
	for i := range fs {
		if fs[i].Index != i || fp[i].Index != i {
			t.Errorf("event %d: indices seq=%d par=%d, want %d", i, fs[i].Index, fp[i].Index, i)
		}
		if !fs[i].Config.Equal(fp[i].Config) || fs[i].Perf != fp[i].Perf {
			t.Errorf("event %d diverged: seq={%v %g} par={%v %g}",
				i, fs[i].Config, fs[i].Perf, fp[i].Config, fp[i].Perf)
		}
	}

	// Identical best-performance trajectories — the acceptance property the
	// JSONL traces rely on.
	ts, tp := BestTrajectory(seq, Maximize), BestTrajectory(par, Maximize)
	if len(ts) != len(tp) {
		t.Fatalf("trajectory lengths: seq=%d par=%d", len(ts), len(tp))
	}
	for i := range ts {
		if ts[i] != tp[i] {
			t.Errorf("trajectory[%d]: seq=%g par=%g", i, ts[i], tp[i])
		}
	}
}

// TestTracerEvaluatorEvents pins the per-site event shapes: fresh
// measurement, cache hit, seed.
func TestTracerEvaluatorEvents(t *testing.T) {
	ev := NewEvaluator(tracerSpace(t), ObjectiveFunc(func(cfg Config) float64 {
		return float64(cfg[0])
	}))
	var tr CollectTracer
	ev.Tracer = &tr

	if err := ev.Seed(Config{7, 7}, 123); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ev.EvalConfig(Config{5, 5}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ev.EvalConfig(Config{5, 5}); err != nil { // cache hit
		t.Fatal(err)
	}

	if len(tr.Events) != 3 {
		t.Fatalf("events = %+v, want 3", tr.Events)
	}
	seed, fresh, hit := tr.Events[0], tr.Events[1], tr.Events[2]
	if seed.Type != EventSeed || seed.Perf != 123 || seed.Index != -1 {
		t.Errorf("seed event = %+v", seed)
	}
	if fresh.Type != EventEval || fresh.Cached || fresh.Index != 0 || fresh.Perf != 5 {
		t.Errorf("fresh event = %+v", fresh)
	}
	if hit.Type != EventEval || !hit.Cached || hit.Index != -1 || hit.Perf != 5 {
		t.Errorf("cache-hit event = %+v", hit)
	}
	for _, e := range tr.Events {
		if e.Time.IsZero() {
			t.Errorf("event %+v missing timestamp", e)
		}
	}
}

// TestNelderMeadEmitsSimplexAndConvergeEvents: a full kernel run produces
// simplex operations with known names and exactly one convergence decision
// per (restart-free) run.
func TestNelderMeadEmitsSimplexAndConvergeEvents(t *testing.T) {
	space := tracerSpace(t)
	obj := ObjectiveFunc(func(cfg Config) float64 {
		dx, dy := float64(cfg[0]-20), float64(cfg[1]-45)
		return -(dx*dx + dy*dy)
	})
	var tr CollectTracer
	res, err := NelderMead(space, obj, NelderMeadOptions{
		Direction: Maximize, MaxEvals: 200, Init: DistributedInit{}, Tracer: &tr,
	})
	if err != nil {
		t.Fatal(err)
	}

	known := map[string]bool{
		OpReflect: true, OpExpand: true, OpContractOut: true,
		OpContractIn: true, OpShrink: true,
	}
	var simplex, converge int
	for _, e := range tr.Events {
		switch e.Type {
		case EventSimplex:
			simplex++
			if !known[e.Op] {
				t.Errorf("unknown simplex op %q", e.Op)
			}
			if e.Iter < 0 {
				t.Errorf("simplex event without iteration: %+v", e)
			}
		case EventConverge:
			converge++
			switch e.Op {
			case "reltol", "stall", "budget", "init_budget":
			default:
				t.Errorf("unknown convergence reason %q", e.Op)
			}
			if e.Perf != res.BestPerf {
				t.Errorf("converge perf = %g, want %g", e.Perf, res.BestPerf)
			}
		}
	}
	if simplex == 0 {
		t.Error("no simplex events emitted")
	}
	if converge < 1 {
		t.Error("no convergence decision emitted")
	}

	// The traced trajectory ends at the kernel's reported best.
	traj := BestTrajectory(tr.Events, Maximize)
	if len(traj) == 0 {
		t.Fatal("empty trajectory")
	}
	if got := traj[len(traj)-1]; got != res.BestPerf {
		t.Errorf("trajectory final = %g, want BestPerf %g", got, res.BestPerf)
	}
	for i := 1; i < len(traj); i++ {
		if traj[i] < traj[i-1] {
			t.Errorf("best-so-far regressed at %d: %g -> %g", i, traj[i-1], traj[i])
		}
	}
}

// TestMultiTracerAndStampSession covers the composition helpers, including
// their nil fast paths.
func TestMultiTracerAndStampSession(t *testing.T) {
	if MultiTracer() != nil || MultiTracer(nil, nil) != nil {
		t.Error("MultiTracer of nothing should be nil")
	}
	var a, b CollectTracer
	if MultiTracer(&a, nil) != Tracer(&a) {
		t.Error("single live tracer should pass through")
	}
	m := MultiTracer(&a, nil, &b)
	m.Emit(Event{Type: EventEval, Perf: 1})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Errorf("fan-out: a=%d b=%d", len(a.Events), len(b.Events))
	}

	if StampSession(nil, "x") != nil {
		t.Error("StampSession(nil) should stay nil")
	}
	st := StampSession(&a, "sess-1")
	st.Emit(Event{Type: EventEval})
	st.Emit(Event{Session: "pre", Type: EventEval})
	if got := a.Events[1].Session; got != "sess-1" {
		t.Errorf("stamped session = %q", got)
	}
	if got := a.Events[2].Session; got != "pre" {
		t.Errorf("pre-stamped session overwritten: %q", got)
	}
}

// TestBestTrajectoryDirections: the fold respects the tuning direction and
// skips cache hits and seeds.
func TestBestTrajectoryDirections(t *testing.T) {
	events := []Event{
		{Type: EventSeed, Perf: -999},
		{Type: EventEval, Perf: 5},
		{Type: EventEval, Perf: 3},
		{Type: EventEval, Cached: true, Perf: math.Inf(1)},
		{Type: EventEval, Perf: 8},
	}
	max := BestTrajectory(events, Maximize)
	wantMax := []float64{5, 5, 8}
	min := BestTrajectory(events, Minimize)
	wantMin := []float64{5, 3, 3}
	for i := range wantMax {
		if max[i] != wantMax[i] {
			t.Errorf("max[%d] = %g, want %g", i, max[i], wantMax[i])
		}
		if min[i] != wantMin[i] {
			t.Errorf("min[%d] = %g, want %g", i, min[i], wantMin[i])
		}
	}
	if BestTrajectory(nil, Maximize) != nil {
		t.Error("empty stream should fold to nil")
	}
}
