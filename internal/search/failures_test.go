package search

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestFailurePenaltyAndSanitize(t *testing.T) {
	if p := FailurePenalty(Maximize); p >= 0 || math.IsInf(p, 0) {
		t.Fatalf("Maximize penalty = %v, want large negative finite", p)
	}
	if p := FailurePenalty(Minimize); p <= 0 || math.IsInf(p, 0) {
		t.Fatalf("Minimize penalty = %v, want large positive finite", p)
	}
	for _, dir := range []Direction{Maximize, Minimize} {
		// The penalty is the worst possible value under its direction.
		if dir.Better(FailurePenalty(dir), 0) {
			t.Fatalf("penalty beats 0 under %v", dir)
		}
		for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			got := Sanitize(bad, dir)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("Sanitize(%v, %v) = %v, want finite", bad, dir, got)
			}
			if !IsFailure(got, dir) {
				t.Fatalf("Sanitize(%v, %v) = %v not recognized as failure", bad, dir, got)
			}
		}
		if Sanitize(42.5, dir) != 42.5 {
			t.Fatalf("Sanitize mangled a finite value")
		}
		if IsFailure(42.5, dir) {
			t.Fatalf("finite ordinary value flagged as failure")
		}
	}
}

func TestFailableWrapsErrorsAsPenalty(t *testing.T) {
	fail := errors.New("measurement crashed")
	obj := Failable(func(cfg Config) (float64, error) {
		if cfg[0] == 0 {
			return 0, fail
		}
		if cfg[0] == 1 {
			return math.NaN(), nil
		}
		return float64(cfg[0]), nil
	}, Maximize)
	if got := obj.Measure(Config{0}); got != FailurePenalty(Maximize) {
		t.Fatalf("error measurement = %v, want penalty", got)
	}
	if got := obj.Measure(Config{1}); got != FailurePenalty(Maximize) {
		t.Fatalf("NaN measurement = %v, want penalty", got)
	}
	if got := obj.Measure(Config{7}); got != 7 {
		t.Fatalf("clean measurement = %v", got)
	}
}

// TestSimplexSurvivesInjectedFailures is the property test: across random
// spaces, directions and failure rates, a kernel fed worst-case penalties
// for randomly failed evaluations must (a) only ever measure in-bounds grid
// configurations, (b) terminate within MaxEvals, and (c) return an
// in-bounds best whenever anything was measured.
func TestSimplexSurvivesInjectedFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(20040813)) // SC 2004 era, deterministic
	for trial := 0; trial < 120; trial++ {
		dim := 1 + rng.Intn(4)
		params := make([]Param, dim)
		for j := range params {
			min := rng.Intn(21) - 10
			span := 1 + rng.Intn(40)
			step := 1 + rng.Intn(3)
			params[j] = Param{
				Name: string(rune('a' + j)),
				Min:  min, Max: min + span, Step: step,
				Default: min,
			}
			// Keep the default on-grid.
			params[j].Max = min + (span/step)*step
		}
		space := MustSpace(params...)

		dir := Maximize
		if rng.Intn(2) == 1 {
			dir = Minimize
		}
		// Failure rates from gentle to brutal; a few trials fail everything.
		failRate := rng.Float64()
		if trial%10 == 9 {
			failRate = 1.0
		}
		peak := make([]float64, dim)
		for j, p := range params {
			peak[j] = float64(p.Min) + rng.Float64()*float64(p.Max-p.Min)
		}
		obj := Failable(func(cfg Config) (float64, error) {
			if rng.Float64() < failRate {
				return 0, errors.New("injected failure")
			}
			d := 0.0
			for j, v := range cfg {
				dv := float64(v) - peak[j]
				d += dv * dv
			}
			if dir == Maximize {
				return 1000 - d, nil
			}
			return d, nil
		}, dir)

		maxEvals := 20 + rng.Intn(120)
		var init InitStrategy = DistributedInit{}
		if rng.Intn(2) == 0 {
			init = ExtremeInit{}
		}
		res, err := NelderMead(space, obj, NelderMeadOptions{
			Init:      init,
			Direction: dir,
			MaxEvals:  maxEvals,
			Restarts:  rng.Intn(2),
		})
		if err != nil {
			t.Fatalf("trial %d: kernel error: %v", trial, err)
		}
		if res.Evals > maxEvals {
			t.Fatalf("trial %d: %d evals exceeds budget %d", trial, res.Evals, maxEvals)
		}
		if len(res.Trace) != res.Evals {
			t.Fatalf("trial %d: trace length %d != evals %d", trial, len(res.Trace), res.Evals)
		}
		for i, ev := range res.Trace {
			if !space.Contains(ev.Config) {
				t.Fatalf("trial %d: evaluation %d out of bounds: %v", trial, i, ev.Config)
			}
			if math.IsNaN(ev.Perf) || math.IsInf(ev.Perf, 0) {
				t.Fatalf("trial %d: non-finite perf leaked into the trace: %v", trial, ev.Perf)
			}
		}
		if res.Evals > 0 {
			if len(res.BestConfig) == 0 {
				t.Fatalf("trial %d: measured %d points but no best", trial, res.Evals)
			}
			if !space.Contains(res.BestConfig) {
				t.Fatalf("trial %d: best %v out of bounds", trial, res.BestConfig)
			}
		}
	}
}

// TestSimplexAllFailuresTerminates pins the pathological edge: when every
// single evaluation fails, the kernel must still terminate inside the
// budget and report the penalty as its (uniformly bad) best.
func TestSimplexAllFailuresTerminates(t *testing.T) {
	space := MustSpace(
		Param{Name: "x", Min: 0, Max: 50, Step: 1},
		Param{Name: "y", Min: 0, Max: 50, Step: 1},
	)
	for _, dir := range []Direction{Maximize, Minimize} {
		obj := Failable(func(Config) (float64, error) {
			return 0, errors.New("always down")
		}, dir)
		res, err := NelderMead(space, obj, NelderMeadOptions{
			Init: DistributedInit{}, Direction: dir, MaxEvals: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Evals > 60 {
			t.Fatalf("evals = %d", res.Evals)
		}
		if !IsFailure(res.BestPerf, dir) {
			t.Fatalf("best perf %v should be the failure penalty", res.BestPerf)
		}
		if !space.Contains(res.BestConfig) {
			t.Fatalf("best config %v out of bounds", res.BestConfig)
		}
	}
}
