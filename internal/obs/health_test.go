package obs

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

func healthzBody(t *testing.T, h *Health) (int, map[string]any, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var body map[string]any
	raw := rec.Body.String()
	if err := json.Unmarshal([]byte(raw), &body); err != nil {
		t.Fatalf("healthz body is not JSON: %v\n%s", err, raw)
	}
	return rec.Code, body, raw
}

func TestHealthReportShape(t *testing.T) {
	h := NewHealth(nil)
	code, body, raw := healthzBody(t, h)
	if code != 200 || body["status"] != "ok" {
		t.Fatalf("empty health = %d %v, want 200 ok", code, body)
	}
	// The historical probe contract: the literal substring survives.
	if !strings.Contains(raw, `"status":"ok"`) {
		t.Errorf("body %q lost the \"status\":\"ok\" literal older probes grep for", raw)
	}
	build, ok := body["build"].(map[string]any)
	if !ok || build["go"] == "" {
		t.Errorf("build info missing from %v", body)
	}
	if _, ok := body["uptime_seconds"].(float64); !ok {
		t.Errorf("uptime missing from %v", body)
	}
}

func TestHealthNamedChecks(t *testing.T) {
	failing := errors.New("wal stuck")
	var broken bool
	h := NewHealth(func() error { return nil })
	h.Register("expdb_wal", func() error {
		if broken {
			return failing
		}
		return nil
	})

	code, body, _ := healthzBody(t, h)
	if code != 200 {
		t.Fatalf("all checks passing = %d, want 200", code)
	}
	checks := body["checks"].(map[string]any)
	if checks["ready"] != "ok" || checks["expdb_wal"] != "ok" {
		t.Errorf("checks = %v, want both ok", checks)
	}

	broken = true
	code, body, _ = healthzBody(t, h)
	if code != 503 || body["status"] != "unhealthy" {
		t.Fatalf("failing check = %d %v, want 503 unhealthy", code, body["status"])
	}
	checks = body["checks"].(map[string]any)
	if checks["expdb_wal"] != "wal stuck" || checks["ready"] != "ok" {
		t.Errorf("checks = %v, want the failing one named with its error", checks)
	}
	if body["error"] != "wal stuck" {
		t.Errorf("error field = %v, want the first failure surfaced", body["error"])
	}

	// Re-registering by name replaces the check.
	h.Register("expdb_wal", func() error { return nil })
	if code, _, _ := healthzBody(t, h); code != 200 {
		t.Errorf("replaced check still failing: %d", code)
	}
}

func TestHealthNilIsAlwaysHealthy(t *testing.T) {
	var h *Health
	h.Register("x", func() error { return errors.New("ignored") })
	rep, code := h.report()
	if code != 200 || rep.Status != "ok" {
		t.Errorf("nil Health = %d %s, want 200 ok", code, rep.Status)
	}
}
