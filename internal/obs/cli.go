package obs

import (
	"flag"
	"log/slog"
	"os"

	"harmony/internal/search"
)

// CLIConfig is the flag surface every harmony binary shares:
//
//	-obs-addr    opt-in observability endpoint (/metrics, /healthz,
//	             /debug/pprof); empty disables it
//	-log-level   debug|info|warn|error
//	-log-format  text|json
//	-trace-out   JSONL event trace file ("-" = stdout); empty disables it
type CLIConfig struct {
	Addr      string
	LogLevel  string
	LogFormat string
	TraceOut  string
}

// BindFlags registers the shared observability flags on fs (the default
// flag.CommandLine in main functions) and returns the config they fill.
func BindFlags(fs *flag.FlagSet) *CLIConfig {
	c := &CLIConfig{}
	fs.StringVar(&c.Addr, "obs-addr", "", "observability HTTP endpoint exposing /metrics, /healthz and /debug/pprof (empty = disabled)")
	fs.StringVar(&c.LogLevel, "log-level", "info", "log level: debug, info, warn or error")
	fs.StringVar(&c.LogFormat, "log-format", "text", "log format: text or json")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write the typed tuning-event trace as JSONL to this file ('-' = stdout, empty = disabled)")
	return c
}

// Runtime is the assembled observability plumbing of one process.
type Runtime struct {
	// Logger is never nil.
	Logger *slog.Logger
	// Registry is never nil (metrics simply go unscraped without -obs-addr).
	Registry *Registry
	// Trace is the JSONL sink, nil without -trace-out.
	Trace *JSONL
	// HTTP is the endpoint, nil without -obs-addr.
	HTTP *HTTPServer
}

// Start materializes the config: build the logger (stderr), open the trace
// sink, and bind the HTTP endpoint. healthy may be nil.
func (c *CLIConfig) Start(healthy func() error) (*Runtime, error) {
	level, err := ParseLevel(c.LogLevel)
	if err != nil {
		return nil, err
	}
	logger, err := NewLogger(os.Stderr, level, c.LogFormat)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{Logger: logger, Registry: NewRegistry()}
	if c.TraceOut != "" {
		rt.Trace, err = OpenJSONL(c.TraceOut)
		if err != nil {
			return nil, err
		}
	}
	if c.Addr != "" {
		rt.HTTP, err = Serve(c.Addr, rt.Registry, healthy)
		if err != nil {
			rt.Trace.Close()
			return nil, err
		}
		logger.Info("observability endpoint up",
			"addr", rt.HTTP.Addr.String(),
			"endpoints", "/metrics /healthz /debug/pprof")
	}
	return rt, nil
}

// Tracer returns the trace sink as a search.Tracer, or a true nil interface
// when tracing is disabled so instrumented code keeps its nil fast path.
func (rt *Runtime) Tracer() search.Tracer {
	if rt == nil || rt.Trace == nil {
		return nil
	}
	return rt.Trace
}

// Close tears the runtime down (endpoint first, then the trace file).
func (rt *Runtime) Close() {
	if rt == nil {
		return
	}
	if rt.HTTP != nil {
		rt.HTTP.Close() //nolint:errcheck // shutdown path
	}
	if rt.Trace != nil {
		if err := rt.Trace.Close(); err != nil {
			rt.Logger.Warn("trace sink close failed", "err", err)
		}
	}
}
