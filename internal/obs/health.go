package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// Health is the upgraded /healthz surface: instead of a bare status it
// reports build identity (module version, VCS revision, Go runtime),
// process uptime, and a set of named per-subsystem checks (expdb WAL
// flush lag, accept-loop liveness, ...) so an operator — or an orchestra-
// tor's readiness probe — can tell *which* part of the daemon is sick.
//
// Checks may be registered at any time, including after the endpoint is
// serving: registration is mutex-guarded and each request re-runs every
// check. A nil *Health serves the permanently healthy degenerate report.
type Health struct {
	start time.Time

	mu     sync.Mutex
	checks []healthCheck
}

type healthCheck struct {
	name string
	fn   func() error
}

// NewHealth returns a Health whose uptime clock starts now. ready, when
// non-nil, is installed as the "ready" check — the legacy single-function
// health gate every binary already wires.
func NewHealth(ready func() error) *Health {
	h := &Health{start: time.Now()}
	if ready != nil {
		h.Register("ready", ready)
	}
	return h
}

// Register adds (or replaces, by name) a named subsystem check. fn runs on
// every /healthz request and must be safe for concurrent use; returning
// nil means healthy.
func (h *Health) Register(name string, fn func() error) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.checks {
		if h.checks[i].name == name {
			h.checks[i].fn = fn
			return
		}
	}
	h.checks = append(h.checks, healthCheck{name: name, fn: fn})
}

// healthReport is the /healthz JSON shape. Status stays the first field
// and keeps its historical "ok"/"unhealthy" values so existing probes
// (grep '"status":"ok"') keep working.
type healthReport struct {
	Status string `json:"status"`
	// Error surfaces the first failing check's message — the field the
	// pre-upgrade endpoint carried, preserved for compatibility.
	Error         string            `json:"error,omitempty"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Build         buildReport       `json:"build"`
	Checks        map[string]string `json:"checks,omitempty"`
}

type buildReport struct {
	Go       string `json:"go"`
	Module   string `json:"module,omitempty"`
	Version  string `json:"version,omitempty"`
	Revision string `json:"revision,omitempty"`
	Time     string `json:"vcs_time,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
}

// buildInfo is read once: the binary cannot change under a running
// process.
var buildInfoOnce = sync.OnceValue(func() buildReport {
	b := buildReport{Go: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	b.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
})

// report runs every check and assembles the response body.
func (h *Health) report() (healthReport, int) {
	rep := healthReport{Status: "ok", Build: buildInfoOnce()}
	code := http.StatusOK
	if h == nil {
		return rep, code
	}
	rep.UptimeSeconds = time.Since(h.start).Seconds()
	h.mu.Lock()
	checks := append([]healthCheck(nil), h.checks...)
	h.mu.Unlock()
	sort.Slice(checks, func(i, j int) bool { return checks[i].name < checks[j].name })
	if len(checks) > 0 {
		rep.Checks = make(map[string]string, len(checks))
	}
	for _, c := range checks {
		if err := c.fn(); err != nil {
			rep.Checks[c.name] = err.Error()
			rep.Status = "unhealthy"
			code = http.StatusServiceUnavailable
			if rep.Error == "" {
				rep.Error = err.Error()
			}
		} else {
			rep.Checks[c.name] = "ok"
		}
	}
	return rep, code
}

// ServeHTTP implements http.Handler for /healthz.
func (h *Health) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rep, code := h.report()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(rep) //nolint:errcheck // best effort to a flaky scraper
}
