package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler builds the observability mux:
//
//	/metrics        Prometheus text exposition of reg
//	/healthz        200 {"status":"ok"} while healthy() returns nil,
//	                503 {"status":"unhealthy","error":...} otherwise
//	/debug/pprof/*  the standard runtime profiles (explicitly wired, not
//	                via the package's DefaultServeMux side effect)
//
// healthy may be nil (always healthy); reg may be nil (empty exposition).
func Handler(reg *Registry, healthy func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if healthy != nil {
			if err := healthy(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "{\"status\":\"unhealthy\",\"error\":%q}\n", err.Error())
				return
			}
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	// pprof: wire the handlers onto our mux so importing net/http/pprof's
	// DefaultServeMux registration is never relied on, and the profiles are
	// only reachable through the opt-in observability listener.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPServer is a running observability endpoint.
type HTTPServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr net.Addr
	srv  *http.Server
	done chan struct{}
}

// Serve starts the observability endpoint on addr ("" is rejected — the
// endpoint is opt-in, callers gate on the flag). It returns once the
// listener is bound; serving continues in the background until Close.
func Serve(addr string, reg *Registry, healthy func() error) (*HTTPServer, error) {
	if addr == "" {
		return nil, fmt.Errorf("obs: empty listen address")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &HTTPServer{
		Addr: ln.Addr(),
		srv: &http.Server{
			Handler:           Handler(reg, healthy),
			ReadHeaderTimeout: 5 * time.Second,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	}()
	return s, nil
}

// Close shuts the endpoint down, waiting briefly for in-flight scrapes.
func (s *HTTPServer) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}
