package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the observability mux:
//
//	/metrics        Prometheus text exposition of reg
//	/healthz        the health report (200 {"status":"ok",...} while every
//	                registered check passes, 503 otherwise)
//	/debug/pprof/*  the standard runtime profiles (explicitly wired, not
//	                via the package's DefaultServeMux side effect)
//
// health may be nil (always healthy); reg may be nil (empty exposition).
// The returned mux is shared deliberately: ServeMux registration is
// mutex-guarded, so a binary may Handle additional routes (a control-plane
// API, a dashboard) after the endpoint has started serving.
func NewMux(reg *Registry, health *Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/healthz", health)
	// pprof: wire the handlers onto our mux so importing net/http/pprof's
	// DefaultServeMux registration is never relied on, and the profiles are
	// only reachable through the opt-in observability listener.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Handler builds the observability mux with a single readiness gate —
// the original endpoint surface, kept for callers that don't need named
// per-subsystem checks. healthy may be nil (always healthy).
func Handler(reg *Registry, healthy func() error) http.Handler {
	return NewMux(reg, NewHealth(healthy))
}

// HTTPServer is a running observability endpoint.
type HTTPServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr net.Addr
	// Mux is the live routing table. Registering additional routes after
	// Serve returned is safe — ServeMux guards its table with a mutex.
	Mux *http.ServeMux
	// Health is the /healthz report; subsystems register named checks on it.
	Health *Health
	srv    *http.Server
	done   chan struct{}
}

// Serve starts the observability endpoint on addr ("" is rejected — the
// endpoint is opt-in, callers gate on the flag). It returns once the
// listener is bound; serving continues in the background until Close.
func Serve(addr string, reg *Registry, healthy func() error) (*HTTPServer, error) {
	if addr == "" {
		return nil, fmt.Errorf("obs: empty listen address")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	health := NewHealth(healthy)
	mux := NewMux(reg, health)
	s := &HTTPServer{
		Addr:   ln.Addr(),
		Mux:    mux,
		Health: health,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	}()
	return s, nil
}

// Close shuts the endpoint down, waiting briefly for in-flight scrapes.
func (s *HTTPServer) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}
