package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"harmony/internal/search"
)

// JSONL is a line-delimited JSON sink for search.Tracer events. One sink
// may be shared by many concurrent sessions (the server's -trace-out file):
// Emit serializes writes, and search.StampSession keeps the interleaved
// stream demultiplexable. A nil *JSONL drops every event, so callers can
// wire it unconditionally.
type JSONL struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	err    error
}

// NewJSONL wraps an io.Writer as a JSONL event sink.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

// OpenJSONL creates (truncating) the file at path as a JSONL event sink;
// "-" means stdout.
func OpenJSONL(path string) (*JSONL, error) {
	if path == "-" {
		return NewJSONL(os.Stdout), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace out: %w", err)
	}
	return &JSONL{w: bufio.NewWriter(f), closer: f}, nil
}

// Emit implements search.Tracer: one JSON object per line, flushed per
// event so a crash loses at most the event being written.
func (j *JSONL) Emit(e search.Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.err = j.w.Flush()
}

// Err returns the first write/encode error (the sink goes quiet after one).
func (j *JSONL) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and closes the underlying file (no-op for plain writers and
// nil sinks).
func (j *JSONL) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	if j.closer != nil {
		if err := j.closer.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.closer = nil
	}
	return j.err
}

// ReadEvents decodes a JSONL event stream (the offline-analysis half of the
// sink). Blank lines are skipped; a malformed line fails with its line
// number.
func ReadEvents(r io.Reader) ([]search.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	var out []search.Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e search.Event
		if err := json.Unmarshal(b, &e); err != nil {
			return out, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// TrajectoryRecord is one per-iteration line of a tuning trajectory: the
// paper's convergence-time series (hbench -json emits these).
type TrajectoryRecord struct {
	// Iter is the 1-based exploration ordinal (real measurements only).
	Iter int `json:"iter"`
	// Perf is the performance of this exploration.
	Perf float64 `json:"perf"`
	// Best is the best performance seen so far.
	Best float64 `json:"best"`
	// ElapsedMS is wall-clock milliseconds since the trajectory started.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Estimated marks an exploration answered by the estimation gate
	// instead of a measurement. Omitted when false, so exact-mode
	// trajectories keep their historical field set.
	Estimated bool `json:"estimated,omitempty"`
	// Fidelity is the measurement fidelity when partial (f ∈ (0, 1));
	// omitted for full measurements.
	Fidelity float64 `json:"fidelity,omitempty"`
}

// TrajectoryJSONL adapts a writer into a search.Tracer that reduces the
// event stream to per-iteration TrajectoryRecord lines: cache hits, seeds
// and simplex bookkeeping are folded away, leaving exactly the (iter, best,
// elapsed) series the BENCH_*.json artifacts need.
type TrajectoryJSONL struct {
	mu    sync.Mutex
	enc   *json.Encoder
	dir   search.Direction
	start time.Time
	iter  int
	best  float64
	// haveFull marks that best holds a real full-fidelity truth; until one
	// exists, noisy reduced-fidelity perfs and gate estimates may stand
	// in, but the first real measurement evicts them and neither can ever
	// beat one afterwards (mirrors search.Trace.Best and BestTrajectory).
	haveFull bool
	now      func() time.Time // test seam
}

// NewTrajectoryJSONL returns a trajectory sink writing to w, folding
// best-so-far under dir.
func NewTrajectoryJSONL(w io.Writer, dir search.Direction) *TrajectoryJSONL {
	return &TrajectoryJSONL{enc: json.NewEncoder(w), dir: dir, now: time.Now}
}

// Emit implements search.Tracer.
func (t *TrajectoryJSONL) Emit(e search.Event) {
	if t == nil || e.Type != search.EventEval || e.Cached {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.iter == 0 {
		t.start = t.now()
	}
	full := search.FullFidelity(e.Fidelity)
	truth := full && !e.Estimated
	switch {
	case truth && !t.haveFull:
		t.best, t.haveFull = e.Perf, true
	case truth && t.dir.Better(e.Perf, t.best):
		t.best = e.Perf
	case !truth && !t.haveFull && (t.iter == 0 || t.dir.Better(e.Perf, t.best)):
		t.best = e.Perf
	}
	t.iter++
	rec := TrajectoryRecord{
		Iter:      t.iter,
		Perf:      e.Perf,
		Best:      t.best,
		ElapsedMS: float64(t.now().Sub(t.start)) / float64(time.Millisecond),
		Estimated: e.Estimated,
	}
	if !full {
		rec.Fidelity = e.Fidelity
	}
	t.enc.Encode(rec) //nolint:errcheck // best-effort sink
}
