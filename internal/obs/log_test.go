package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
		ok   bool
	}{
		{"debug", slog.LevelDebug, true},
		{"info", slog.LevelInfo, true},
		{"", slog.LevelInfo, true},
		{"WARN", slog.LevelWarn, true},
		{"warning", slog.LevelWarn, true},
		{"error", slog.LevelError, true},
		{"loud", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseLevel(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseLevel(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestLoggerSessionIDConvention: records logged through a context carrying
// WithSessionID pick up the "session" attribute in both formats.
func TestLoggerSessionIDConvention(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithSessionID(context.Background(), "abc123")
	log.InfoContext(ctx, "session event", "k", 1)
	log.Info("bare event")

	dec := json.NewDecoder(&buf)
	var first, second map[string]any
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&second); err != nil {
		t.Fatal(err)
	}
	if first["session"] != "abc123" {
		t.Errorf("session attr = %v, want abc123 (record: %v)", first["session"], first)
	}
	if _, ok := second["session"]; ok {
		t.Errorf("bare record grew a session attr: %v", second)
	}
	if SessionIDFrom(ctx) != "abc123" {
		t.Errorf("SessionIDFrom = %q", SessionIDFrom(ctx))
	}
	if SessionIDFrom(context.Background()) != "" {
		t.Error("SessionIDFrom(empty) != \"\"")
	}
}

func TestLoggerLevelAndFormat(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, slog.LevelWarn, "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("filtered")
	log.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "filtered") {
		t.Errorf("info record leaked past warn level: %q", out)
	}
	if !strings.Contains(out, "kept") {
		t.Errorf("warn record missing: %q", out)
	}
	if _, err := NewLogger(&buf, slog.LevelInfo, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestNopLoggerDiscards: the no-op logger is enabled at no level.
func TestNopLoggerDiscards(t *testing.T) {
	log := Nop()
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Error("nop logger claims to be enabled")
	}
	log.Error("dropped") // must not panic
}

func TestNewIDUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

// TestFuncHandler: the deprecated printf shim receives structured records as
// flat "msg key=val" lines, including WithAttrs context and the session ID.
func TestFuncHandler(t *testing.T) {
	var lines []string
	log := slog.New(FuncHandler(func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}))
	log = log.With("app", "demo")
	ctx := WithSessionID(context.Background(), "sid9")
	log.InfoContext(ctx, "session ended", "evals", 42)
	if len(lines) != 1 {
		t.Fatalf("lines = %v", lines)
	}
	got := lines[0]
	for _, want := range []string{"session ended", "session=sid9", "app=demo", "evals=42"} {
		if !strings.Contains(got, want) {
			t.Errorf("line %q missing %q", got, want)
		}
	}
}
