package obs

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestHTTPRoundTrip boots the observability endpoint on an ephemeral port
// and exercises /healthz and /metrics over a real HTTP round trip, flipping
// health mid-test.
func TestHTTPRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_requests_total", "Round-trip requests.").Add(7)

	var unhealthy error
	srv, err := Serve("127.0.0.1:0", reg, func() error { return unhealthy })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	base := "http://" + srv.Addr.String()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(b), resp.Header
	}

	// Healthy.
	code, body, _ := get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}

	// Metrics carry the content type and the registered sample.
	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Errorf("/metrics = %d, want 200", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE rt_requests_total counter\nrt_requests_total 7\n") {
		t.Errorf("/metrics missing sample:\n%s", body)
	}

	// Updates are visible on the next scrape.
	reg.Counter("rt_requests_total", "").Inc()
	if _, body, _ := get("/metrics"); !strings.Contains(body, "rt_requests_total 8") {
		t.Errorf("scrape did not observe the update:\n%s", body)
	}

	// Unhealthy flips /healthz to 503 with the error in the body.
	unhealthy = errors.New("listener not bound")
	code, body, _ = get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/healthz while unhealthy = %d, want 503", code)
	}
	if !strings.Contains(body, "listener not bound") {
		t.Errorf("/healthz body = %q, want the error surfaced", body)
	}

	// pprof is wired on the same mux.
	if code, _, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d, want 200", code)
	}
}

// TestServeRejectsEmptyAddr: the endpoint is strictly opt-in.
func TestServeRejectsEmptyAddr(t *testing.T) {
	if _, err := Serve("", nil, nil); err == nil {
		t.Fatal("Serve(\"\") succeeded, want error")
	}
}

// TestHandlerNilRegistry: scraping an instrument-free process yields an
// empty, well-formed exposition rather than a panic.
func TestHandlerNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	resp, err := http.Get("http://" + srv.Addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(b) != 0 {
		t.Errorf("nil-registry scrape = %d %q, want 200 empty", resp.StatusCode, b)
	}
}
