// Package obs is the zero-dependency observability layer: a structured,
// levelled logger on log/slog with a session/trace-ID context convention, a
// lock-cheap metrics registry exposed in Prometheus text format, an opt-in
// HTTP endpoint (/metrics, /healthz, /debug/pprof) and a JSONL sink for the
// search kernel's typed trace events.
//
// Every handle in the package is nil-safe: a nil *Counter, *Gauge,
// *Histogram, *Registry or *JSONL costs one branch per operation, so
// un-instrumented library use pays ~zero. Loggers are plain *slog.Logger
// values; Nop() returns one that discards everything.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// ParseLevel maps a CLI-ish level string ("debug", "info", "warn", "error")
// to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a levelled structured logger writing to w. Format is
// "text" (the default) or "json". The handler resolves the session ID
// convention: records logged through a context carrying WithSessionID get a
// "session" attribute automatically.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
	return slog.New(sessionHandler{h}), nil
}

// Nop returns a logger that discards every record at every level.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

// Default returns the process-default logger: text format at info level on
// stderr (with the session-ID context convention installed).
func Default() *slog.Logger {
	l, _ := NewLogger(os.Stderr, slog.LevelInfo, "text") // "text" never errors
	return l
}

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// sessionKey is the context key for the session/trace-ID convention.
type sessionKey struct{}

// WithSessionID returns a context carrying the session/trace ID; loggers
// built by NewLogger attach it as a "session" attribute on every record
// logged through that context (logger.InfoContext(ctx, ...)).
func WithSessionID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, sessionKey{}, id)
}

// SessionIDFrom extracts the session ID installed by WithSessionID ("" when
// absent).
func SessionIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(sessionKey{}).(string)
	return id
}

// sessionHandler injects the context session ID into each record.
type sessionHandler struct{ inner slog.Handler }

func (h sessionHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

func (h sessionHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := SessionIDFrom(ctx); id != "" {
		r = r.Clone()
		r.AddAttrs(slog.String("session", id))
	}
	return h.inner.Handle(ctx, r)
}

func (h sessionHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return sessionHandler{h.inner.WithAttrs(attrs)}
}

func (h sessionHandler) WithGroup(name string) slog.Handler {
	return sessionHandler{h.inner.WithGroup(name)}
}

// idCounter breaks ties when the random source is unavailable.
var idCounter atomic.Uint64

// NewID returns a short random identifier for sessions and traces
// (16 hex chars). It never fails: if the system random source is
// unavailable it degrades to a time+counter scheme that is still unique
// within the process.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := idCounter.Add(1)
		t := uint64(time.Now().UnixNano())
		for i := 0; i < 8; i++ {
			b[i] = byte((t ^ n<<32) >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// FuncHandler adapts a printf-style function (the server's deprecated Logf
// field) to a slog.Handler, so legacy sinks keep receiving the new
// structured events as flat "msg key=val" lines.
func FuncHandler(f func(format string, args ...interface{})) slog.Handler {
	return funcHandler{f: f}
}

type funcHandler struct {
	f     func(format string, args ...interface{})
	attrs []slog.Attr
}

func (h funcHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h funcHandler) Handle(ctx context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	emit := func(a slog.Attr) {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Resolve().Any())
	}
	if id := SessionIDFrom(ctx); id != "" {
		emit(slog.String("session", id))
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(func(a slog.Attr) bool { emit(a); return true })
	h.f("%s", b.String())
	return nil
}

func (h funcHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return funcHandler{f: h.f, attrs: append(append([]slog.Attr(nil), h.attrs...), attrs...)}
}

func (h funcHandler) WithGroup(string) slog.Handler { return h }
