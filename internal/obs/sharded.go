package obs

import (
	"fmt"
	"io"
	"sync/atomic"
)

// paddedUint64 is an atomic counter slot padded out to its own cache line,
// so two shards hammering adjacent slots never false-share. 64 bytes is the
// line size on every amd64/arm64 part we run on; the padding assumes the
// slot starts line-aligned, which the slice allocator gives us for a
// 64-byte element type.
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// ShardedCounter is a monotonically increasing counter striped across
// cache-line-padded slots. A plain Counter is one atomic word: at thousands
// of concurrent sessions every Inc bounces the same cache line between
// cores. A ShardedCounter lets each session pin a shard (any int — it is
// masked down) so the hot path touches a line no other core owns; reads sum
// the stripes. It registers and exposes exactly like a Counter: one
// Prometheus sample carrying the total.
//
// A nil *ShardedCounter is a valid no-op handle.
type ShardedCounter struct {
	meta
	slots []paddedUint64 // power-of-two length
	mask  uint64
}

// ShardedCounter returns (registering on first use) the named sharded
// counter with at least the requested stripe count (rounded up to a power
// of two; values < 1 take 1). Re-registration returns the existing handle;
// the stripe count of the first registration wins.
func (r *Registry) ShardedCounter(name, help string, shards int) *ShardedCounter {
	if r == nil {
		return nil
	}
	m := r.register(name, func() metric {
		n := 1
		for n < shards {
			n <<= 1
		}
		return &ShardedCounter{
			meta:  meta{metricName: name, metricHelp: help},
			slots: make([]paddedUint64, n),
			mask:  uint64(n - 1),
		}
	})
	c, ok := m.(*ShardedCounter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.typeName()))
	}
	return c
}

// Inc adds one on the given shard (masked into range; any int is safe).
func (c *ShardedCounter) Inc(shard int) { c.Add(shard, 1) }

// Add increases the shard's stripe by n (negative n is ignored: counters
// are monotone).
func (c *ShardedCounter) Add(shard, n int) {
	if c == nil || n <= 0 {
		return
	}
	c.slots[uint64(shard)&c.mask].v.Add(uint64(n))
}

// Value returns the summed total across all stripes (0 on a nil handle).
// The sum is not a consistent snapshot under concurrent updates — like any
// Prometheus counter scrape, it is monotone but may lag individual adds.
func (c *ShardedCounter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.slots {
		total += c.slots[i].v.Load()
	}
	return total
}

// Shards reports the stripe count (0 on a nil handle).
func (c *ShardedCounter) Shards() int {
	if c == nil {
		return 0
	}
	return len(c.slots)
}

func (c *ShardedCounter) typeName() string { return "counter" }

func (c *ShardedCounter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.metricName, c.Value())
}
