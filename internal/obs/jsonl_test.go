package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"harmony/internal/search"
)

// TestJSONLRoundTrip writes events through the sink and reads them back
// with ReadEvents: the offline-analysis loop must be lossless.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	in := []search.Event{
		{Session: "s1", Time: time.Unix(10, 0).UTC(), Type: search.EventEval, Index: 0, Config: search.Config{3, 4}, Perf: 12.5},
		{Session: "s1", Time: time.Unix(11, 0).UTC(), Type: search.EventEval, Index: -1, Cached: true, Perf: 12.5},
		{Session: "s1", Time: time.Unix(12, 0).UTC(), Type: search.EventSimplex, Op: search.OpReflect, Iter: 1, Note: "accepted"},
		{Session: "s1", Time: time.Unix(13, 0).UTC(), Type: search.EventConverge, Op: "reltol", Iter: 9},
	}
	for _, e := range in {
		j.Emit(e)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	out, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Type != in[i].Type || out[i].Op != in[i].Op ||
			out[i].Index != in[i].Index || out[i].Perf != in[i].Perf ||
			out[i].Cached != in[i].Cached || out[i].Session != in[i].Session ||
			!out[i].Config.Equal(in[i].Config) {
			t.Errorf("event %d round-tripped to %+v, want %+v", i, out[i], in[i])
		}
	}
}

// TestJSONLConcurrentEmit: one sink shared by several stamped sessions (the
// server's -trace-out) must interleave lines whole, never torn. Run under
// -race this also gates the locking.
func TestJSONLConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	var wg sync.WaitGroup
	const sessions, events = 8, 50
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			tr := search.StampSession(j, strings.Repeat("x", s+1))
			for i := 0; i < events; i++ {
				tr.Emit(search.Event{Type: search.EventEval, Index: i, Perf: float64(i)})
			}
		}(s)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("torn or malformed line: %v", err)
	}
	if len(got) != sessions*events {
		t.Errorf("read %d events, want %d", len(got), sessions*events)
	}
	perSession := map[string]int{}
	for _, e := range got {
		perSession[e.Session]++
	}
	if len(perSession) != sessions {
		t.Errorf("distinct sessions = %d, want %d", len(perSession), sessions)
	}
	for s, n := range perSession {
		if n != events {
			t.Errorf("session %q has %d events, want %d", s, n, events)
		}
	}
}

// TestOpenJSONL: the file path sink creates, truncates and closes.
func TestOpenJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	j, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(search.Event{Type: search.EventPhase, Op: "live"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Op != "live" {
		t.Errorf("events = %+v", events)
	}
}

// TestNilJSONL: a nil sink drops events without panicking, so callers wire
// it unconditionally.
func TestNilJSONL(t *testing.T) {
	var j *JSONL
	j.Emit(search.Event{Type: search.EventEval})
	if err := j.Err(); err != nil {
		t.Error(err)
	}
	if err := j.Close(); err != nil {
		t.Error(err)
	}
}

// TestTrajectoryJSONL pins the reduction from the full event stream to the
// per-iteration records hbench -json emits: cache hits, seeds and simplex
// bookkeeping fold away; best is monotone under the direction; elapsed uses
// the injected clock.
func TestTrajectoryJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrajectoryJSONL(&buf, search.Maximize)
	clock := time.Unix(100, 0)
	tr.now = func() time.Time {
		clock = clock.Add(250 * time.Millisecond)
		return clock
	}

	tr.Emit(search.Event{Type: search.EventSeed, Perf: 999})              // folded away
	tr.Emit(search.Event{Type: search.EventEval, Perf: 10})               // iter 1, best 10
	tr.Emit(search.Event{Type: search.EventEval, Perf: 8})                // iter 2, best 10
	tr.Emit(search.Event{Type: search.EventEval, Cached: true, Perf: 50}) // folded away
	tr.Emit(search.Event{Type: search.EventSimplex, Op: search.OpExpand}) // folded away
	tr.Emit(search.Event{Type: search.EventEval, Perf: 30})               // iter 3, best 30

	raw := append([]byte(nil), buf.Bytes()...)
	var recs []TrajectoryRecord
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var r TrajectoryRecord
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	want := []TrajectoryRecord{
		{Iter: 1, Perf: 10, Best: 10},
		{Iter: 2, Perf: 8, Best: 10},
		{Iter: 3, Perf: 30, Best: 30},
	}
	if len(recs) != len(want) {
		t.Fatalf("records = %+v, want %d entries", recs, len(want))
	}
	for i, w := range want {
		if recs[i].Iter != w.Iter || recs[i].Perf != w.Perf || recs[i].Best != w.Best {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], w)
		}
		if recs[i].ElapsedMS < 0 {
			t.Errorf("record %d elapsed = %v", i, recs[i].ElapsedMS)
		}
	}
	// The fake clock advances 250ms per now() call: first record reads the
	// start then its own stamp.
	if recs[0].ElapsedMS != 250 {
		t.Errorf("first elapsed = %v ms, want 250", recs[0].ElapsedMS)
	}
	// Exact-mode records carry exactly the historical field set: the
	// estimated/fidelity extensions must stay off the wire.
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var raw map[string]any
		if err := json.Unmarshal(line, &raw); err != nil {
			t.Fatal(err)
		}
		if len(raw) != 4 {
			t.Errorf("exact-mode record has extra fields: %s", line)
		}
	}
}

// TestTrajectoryJSONLFidelity pins the multi-fidelity reduction: partial
// measurements carry their fidelity, estimated answers their flag, and the
// best-so-far series never lets a noisy reduced-fidelity perf or a gate
// estimate beat (or outlive) a real full-fidelity truth.
func TestTrajectoryJSONLFidelity(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrajectoryJSONL(&buf, search.Maximize)
	tr.now = func() time.Time { return time.Unix(100, 0) }

	tr.Emit(search.Event{Type: search.EventEval, Perf: 40, Fidelity: 0.25}) // low-fi stand-in best
	tr.Emit(search.Event{Type: search.EventEval, Perf: 10})                 // first truth evicts it
	tr.Emit(search.Event{Type: search.EventEval, Perf: 99, Fidelity: 0.5})  // noisy outlier: not best
	tr.Emit(search.Event{Type: search.EventEval, Perf: 30})                 // truth: best
	tr.Emit(search.Event{Type: search.EventEval, Perf: 35, Estimated: true}) // gate estimate: not best

	var recs []TrajectoryRecord
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var r TrajectoryRecord
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	want := []TrajectoryRecord{
		{Iter: 1, Perf: 40, Best: 40, Fidelity: 0.25},
		{Iter: 2, Perf: 10, Best: 10},
		{Iter: 3, Perf: 99, Best: 10, Fidelity: 0.5},
		{Iter: 4, Perf: 30, Best: 30},
		{Iter: 5, Perf: 35, Best: 30, Estimated: true},
	}
	if len(recs) != len(want) {
		t.Fatalf("records = %+v, want %d entries", recs, len(want))
	}
	for i, w := range want {
		got := recs[i]
		got.ElapsedMS = 0
		if got != w {
			t.Errorf("record %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestReadEventsMalformedLine: a broken line fails with its line number and
// returns the good prefix.
func TestReadEventsMalformedLine(t *testing.T) {
	in := `{"type":"eval","perf":1}
not json
`
	events, err := ReadEvents(strings.NewReader(in))
	if err == nil {
		t.Fatal("malformed line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line number", err)
	}
	if len(events) != 1 {
		t.Errorf("good prefix = %d events, want 1", len(events))
	}
}
