package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestFloatCounterBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.FloatCounter("test_saved_seconds_total", "seconds saved")
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %v", c.Value())
	}
	c.Add(1.5)
	c.Add(0.25)
	if got := c.Value(); got != 1.75 {
		t.Fatalf("value = %v, want 1.75", got)
	}
	// Monotone: non-positive and NaN deltas are ignored.
	c.Add(-3)
	c.Add(0)
	c.Add(math.NaN())
	if got := c.Value(); got != 1.75 {
		t.Fatalf("value after bad deltas = %v, want 1.75", got)
	}
	// Nil handle is a no-op, matching the other metric kinds.
	var nilC *FloatCounter
	nilC.Add(1)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "test_saved_seconds_total 1.75") {
		t.Fatalf("exposition missing float counter:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "# TYPE test_saved_seconds_total counter") {
		t.Fatalf("exposition missing counter TYPE line:\n%s", sb.String())
	}
}

func TestFloatCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.FloatCounter("test_float_total", "x")
			for i := 0; i < perG; i++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	want := float64(goroutines*perG) * 0.5
	if got := reg.FloatCounter("test_float_total", "x").Value(); got != want {
		t.Fatalf("value = %v, want %v", got, want)
	}
}

func TestFloatCounterTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_mixed_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering an int counter as a float counter did not panic")
		}
	}()
	reg.FloatCounter("test_mixed_total", "x")
}
