package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines — both
// re-registration of the same names and metric updates — and checks the
// totals. Run under -race this is the lock-cheapness soundness gate.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 16
		perG       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every goroutine re-registers the handles itself: registration
			// must be concurrent-safe and converge on one shared metric.
			c := reg.Counter("test_ops_total", "ops")
			ga := reg.Gauge("test_level", "level")
			h := reg.Histogram("test_latency", "latency", []float64{1, 2, 4})
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i % 5))
			}
		}()
	}
	// Scrape concurrently with the updates: the exposition writer must not
	// race with atomic updates.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			reg.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done

	want := uint64(goroutines * perG)
	if got := reg.Counter("test_ops_total", "ops").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := reg.Gauge("test_level", "level").Value(); got != float64(want) {
		t.Errorf("gauge = %g, want %d", got, want)
	}
	if got := reg.Histogram("test_latency", "latency", nil).Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}

// TestHistogramBucketEdges pins the inclusive-upper-bound semantics of
// Prometheus buckets: an observation exactly on a bound lands in that bound's
// bucket, just above goes to the next.
func TestHistogramBucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edges", "", []float64{1, 2.5, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2.5, 5, 5.0000001, 1e9} {
		h.Observe(v)
	}
	// Cumulative: <=1: {0.5, 1} = 2; <=2.5: +{1.0000001, 2.5} = 4;
	// <=5: +{5} = 5; +Inf: +{5.0000001, 1e9} = 7.
	got := h.BucketCounts()
	want := []uint64{2, 4, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2.5 + 5 + 5.0000001 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
	// NaN observations are dropped, not poison.
	h.Observe(math.NaN())
	if h.Count() != 7 || math.IsNaN(h.Sum()) {
		t.Errorf("NaN observation leaked: count=%d sum=%g", h.Count(), h.Sum())
	}
}

// TestHistogramBoundsSortedDeduped: unsorted and duplicated bounds are
// repaired at registration.
func TestHistogramBoundsSortedDeduped(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("messy", "", []float64{5, 1, 5, 2})
	h.Observe(1.5)
	got := h.BucketCounts() // bounds 1, 2, 5, +Inf
	want := []uint64{0, 1, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

// TestWritePrometheusGolden pins the full text exposition byte-for-byte:
// HELP/TYPE comments, name-sorted order, inclusive le labels, +Inf, _sum,
// _count, and the "no HELP when empty" rule.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("zz_requests_total", "Requests handled.\nSecond line \\ backslash.")
	c.Add(3)
	g := reg.Gauge("aa_temperature", "Current temperature.")
	g.Set(-1.5)
	h := reg.Histogram("mm_seconds", "Durations.", []float64{0.25, 1})
	h.Observe(0.25)
	h.Observe(0.9)
	h.Observe(7)
	reg.Counter("nohelp_total", "") // no HELP line expected

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	want := `# HELP aa_temperature Current temperature.
# TYPE aa_temperature gauge
aa_temperature -1.5
# HELP mm_seconds Durations.
# TYPE mm_seconds histogram
mm_seconds_bucket{le="0.25"} 1
mm_seconds_bucket{le="1"} 2
mm_seconds_bucket{le="+Inf"} 3
mm_seconds_sum 8.15
mm_seconds_count 3
# TYPE nohelp_total counter
nohelp_total 0
# HELP zz_requests_total Requests handled.\nSecond line \\ backslash.
# TYPE zz_requests_total counter
zz_requests_total 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestNilSafety: a nil registry hands out nil handles and every operation on
// them is a no-op — the un-instrumented fast path must never panic.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x_seconds", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	g.Inc()
	g.Dec()
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.BucketCounts() != nil {
		t.Error("nil handles reported nonzero state")
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Errorf("nil registry wrote %q", sb.String())
	}
}

// TestReRegistrationSharesHandle: same name and type converge on one metric;
// a cross-type collision panics.
func TestReRegistrationSharesHandle(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("shared_total", "first")
	b := reg.Counter("shared_total", "second help is ignored")
	if a != b {
		t.Error("re-registration returned a distinct handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("shared handle value = %d, want 1", b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("cross-type re-registration did not panic")
		}
	}()
	reg.Gauge("shared_total", "collides")
}

// TestCounterMonotone: negative Add is ignored.
func TestCounterMonotone(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("mono_total", "")
	c.Add(2)
	c.Add(-5)
	c.Add(0)
	if c.Value() != 2 {
		t.Errorf("counter = %d, want 2", c.Value())
	}
}

// TestFormatFloat pins the special values the exposition format names.
func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{0, "0"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{math.NaN(), "NaN"},
		{0.005, "0.005"},
	}
	for _, tc := range cases {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
