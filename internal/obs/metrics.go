package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration takes a mutex; the metric handles it
// returns are lock-cheap (a single atomic op per update) and nil-safe, so
// the registry itself may be nil: every constructor then returns a nil
// handle whose methods are no-ops.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]metric
	ordered []metric
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]metric{}}
}

// metric is the common surface the exposition writer needs.
type metric interface {
	name() string
	help() string
	typeName() string
	write(w io.Writer)
}

// meta carries a metric's identity.
type meta struct {
	metricName string
	metricHelp string
}

func (m meta) name() string { return m.metricName }
func (m meta) help() string { return m.metricHelp }

// register installs a metric, returning the existing one on re-registration
// of the same name so packages can share handles without coordination. A
// name collision across types panics: that is a programming error.
func (r *Registry) register(name string, build func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[name]; ok {
		return existing
	}
	m := build()
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter is a monotonically increasing integer metric. A nil *Counter is a
// valid no-op handle.
type Counter struct {
	meta
	v atomic.Uint64
}

// Counter returns (registering on first use) the named counter. Name
// should follow Prometheus conventions (e.g. "harmony_sessions_total").
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, func() metric {
		return &Counter{meta: meta{metricName: name, metricHelp: help}}
	})
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.typeName()))
	}
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters are
// monotone).
func (c *Counter) Add(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) typeName() string { return "counter" }

func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.metricName, c.v.Load())
}

// FloatCounter is a monotonically increasing float metric — Prometheus
// counters are floats, and some accumulations (seconds of measurement time
// saved by a cache, bytes-as-fractions) are not integral. A nil
// *FloatCounter is a valid no-op handle.
type FloatCounter struct {
	meta
	bits atomic.Uint64 // math.Float64bits
}

// FloatCounter returns (registering on first use) the named float counter.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	if r == nil {
		return nil
	}
	m := r.register(name, func() metric {
		return &FloatCounter{meta: meta{metricName: name, metricHelp: help}}
	})
	c, ok := m.(*FloatCounter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.typeName()))
	}
	return c
}

// Add increases the counter by delta (CAS loop). Negative, NaN and -Inf
// deltas are ignored: counters are monotone.
func (c *FloatCounter) Add(delta float64) {
	if c == nil || delta <= 0 || math.IsNaN(delta) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total (0 on a nil handle).
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *FloatCounter) typeName() string { return "counter" }

func (c *FloatCounter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", c.metricName, formatFloat(c.Value()))
}

// Gauge is a float metric that can go up and down. A nil *Gauge is a valid
// no-op handle.
type Gauge struct {
	meta
	bits atomic.Uint64 // math.Float64bits
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, func() metric {
		return &Gauge{meta: meta{metricName: name, metricHelp: help}}
	})
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.typeName()))
	}
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (CAS loop; contention-tolerant).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) typeName() string { return "gauge" }

func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.metricName, formatFloat(g.Value()))
}

// Histogram counts observations into fixed cumulative buckets, Prometheus
// style: bucket i counts observations <= Buckets[i] (upper bounds are
// inclusive), plus an implicit +Inf bucket, a sum and a count. Updates are
// lock-free (one atomic add for the bucket, one for the count, a CAS loop
// for the sum). A nil *Histogram is a valid no-op handle.
type Histogram struct {
	meta
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefBuckets are general-purpose latency buckets in seconds (the Prometheus
// client defaults).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram returns (registering on first use) the named histogram with the
// given ascending upper bounds. Nil or empty bounds take DefBuckets. Bounds
// are sorted and deduplicated defensively.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(name, func() metric {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		dedup := bs[:0]
		for i, b := range bs {
			if i > 0 && b == bs[i-1] {
				continue
			}
			dedup = append(dedup, b)
		}
		h := &Histogram{
			meta:   meta{metricName: name, metricHelp: help},
			bounds: dedup,
		}
		h.buckets = make([]atomic.Uint64, len(dedup)+1)
		return h
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.typeName()))
	}
	return h
}

// Observe records one observation. NaN observations are dropped (they would
// poison the sum).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Binary search for the first bound >= v (le is inclusive).
	idx := sort.SearchFloat64s(h.bounds, v)
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns the cumulative per-bucket counts (including +Inf
// last), Prometheus style.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

func (h *Histogram) typeName() string { return "histogram" }

func (h *Histogram) write(w io.Writer) {
	cum := h.BucketCounts()
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.metricName, formatFloat(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.metricName, cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum %s\n", h.metricName, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", h.metricName, h.count.Load())
}

// formatFloat renders a float the way the Prometheus text format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (HELP/TYPE comments plus samples), sorted by name so
// output is deterministic. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ms := append([]metric(nil), r.ordered...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name() < ms[j].name() })
	for _, m := range ms {
		if h := m.help(); h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name(), escapeHelp(h))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name(), m.typeName())
		m.write(w)
	}
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
