package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestShardedCounterSumsStripes(t *testing.T) {
	r := NewRegistry()
	c := r.ShardedCounter("test_sharded_total", "help", 8)
	if c.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", c.Shards())
	}
	c.Inc(0)
	c.Inc(3)
	c.Add(7, 5)
	c.Add(8, 2)   // masks onto shard 0
	c.Add(1, -4)  // ignored: monotone
	c.Inc(-1)     // masked, not a panic
	if got := c.Value(); got != 10 {
		t.Fatalf("Value() = %d, want 10", got)
	}
}

func TestShardedCounterRoundsUpAndClamps(t *testing.T) {
	r := NewRegistry()
	if got := r.ShardedCounter("test_round_total", "", 5).Shards(); got != 8 {
		t.Errorf("shards=5 rounded to %d, want 8", got)
	}
	if got := r.ShardedCounter("test_clamp_total", "", 0).Shards(); got != 1 {
		t.Errorf("shards=0 clamped to %d, want 1", got)
	}
}

func TestShardedCounterNilSafe(t *testing.T) {
	var c *ShardedCounter
	c.Inc(3)
	c.Add(1, 2)
	if c.Value() != 0 || c.Shards() != 0 {
		t.Fatal("nil handle must read as zero")
	}
	var r *Registry
	if r.ShardedCounter("x", "", 4) != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
}

func TestShardedCounterReregistrationShares(t *testing.T) {
	r := NewRegistry()
	a := r.ShardedCounter("test_shared_total", "", 4)
	b := r.ShardedCounter("test_shared_total", "", 16)
	if a != b {
		t.Fatal("re-registration must return the existing handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type collision must panic")
		}
	}()
	r.Counter("test_shared_total", "")
}

func TestShardedCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.ShardedCounter("test_conc_total", "", 16)
	const workers, perWorker = 32, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(shard)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("Value() = %d, want %d", got, workers*perWorker)
	}
}

func TestShardedCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.ShardedCounter("test_expo_total", "striped counter", 4)
	c.Add(2, 42)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_expo_total counter",
		"test_expo_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}
