package mfsearch

import (
	"fmt"
	"math"
	"sort"
	"time"

	"harmony/internal/search"
	"harmony/internal/stats"
)

// Scheduler defaults.
const (
	// DefaultEta is the successive-halving factor: each rung keeps the
	// best 1/eta of its candidates at eta× the fidelity.
	DefaultEta = 3.0
	// DefaultMinFidelity is the cheapest rung's measurement fidelity.
	DefaultMinFidelity = 1.0 / 16
	// DefaultMaxFidelity is the top rung's fidelity (full measurements).
	DefaultMaxFidelity = 1.0
)

// Options configure one multi-fidelity search run. The zero value selects
// the defaults.
type Options struct {
	// Eta is the halving factor (default DefaultEta). math.Inf(1)
	// collapses the schedule to a single rung at MaxFidelity with no
	// triage at all: Run degenerates — by construction, not by accident —
	// into plain prior-seeded simplex polish, which the property tests
	// pin as trajectory-identical to search.NelderMeadWithEvaluator over
	// a SeededInit.
	Eta float64
	// SMax is the largest bracket exponent: bracket s runs s+1 rungs
	// starting at fidelity MaxFidelity·Eta^−s. Default (0) derives it
	// from the fidelity range: floor(log(MaxFidelity/MinFidelity)/log(Eta)).
	// Negative means zero brackets of triage (polish only).
	SMax int
	// MinFidelity and MaxFidelity bound rung fidelities (defaults
	// DefaultMinFidelity, DefaultMaxFidelity).
	MinFidelity float64
	MaxFidelity float64
	// Direction states whether the objective is maximized or minimized.
	Direction search.Direction
	// Seed drives candidate sampling. Runs are deterministic in
	// (prior, options, objective).
	Seed uint64
	// Survivors is how many full-fidelity incumbents seed the polish
	// simplex (default dim+1 — a full simplex of warm vertices).
	Survivors int
	// Polish configures the final full-fidelity Nelder–Mead pass. Its
	// Init is overridden with a SeededInit over the triage survivors
	// (falling back to the prior's own seed points when triage was
	// skipped); Direction and Tracer follow the outer options when unset.
	Polish search.NelderMeadOptions
	// Tracer receives EventRung scheduler events (rung open/promote) and
	// EventPhase markers. The evaluator's own tracer covers evaluations.
	Tracer search.Tracer
}

func (o *Options) fill(dim int) {
	if o.Eta == 0 {
		o.Eta = DefaultEta
	}
	if o.MaxFidelity <= 0 || o.MaxFidelity > 1 {
		o.MaxFidelity = DefaultMaxFidelity
	}
	if o.MinFidelity <= 0 || o.MinFidelity > o.MaxFidelity {
		o.MinFidelity = math.Min(DefaultMinFidelity, o.MaxFidelity)
	}
	if math.IsInf(o.Eta, 1) {
		o.SMax = -1 // single full-fidelity rung ⇒ no triage brackets
	} else if o.SMax == 0 {
		o.SMax = int(math.Log(o.MaxFidelity/o.MinFidelity) / math.Log(o.Eta))
	}
	if o.Survivors <= 0 {
		o.Survivors = dim + 1
	}
	if o.Polish.Direction != o.Direction {
		o.Polish.Direction = o.Direction
	}
	if o.Polish.Tracer == nil {
		o.Polish.Tracer = o.Tracer
	}
}

// incumbent is one triage finalist: a configuration with its best
// full-fidelity (top rung) performance.
type incumbent struct {
	cfg  search.Config
	perf float64
}

// Run executes the multi-fidelity schedule against a caller-managed
// evaluator: Hyperband brackets of prior-sampled candidates, successively
// halved at increasing fidelity rungs, then full-fidelity Nelder–Mead
// polish seeded by the surviving incumbents. The evaluator carries the
// budget (MaxEvals), the trace, the tracer and any external eval-cache
// layer across both phases. Exhausting the budget during triage is not an
// error — the polish simply starts (and may immediately finish) with
// whatever survived.
//
// prior may be nil (every candidate is then drawn uniformly).
func Run(space *search.Space, ev *search.Evaluator, prior *Prior, opts Options) (*search.Result, error) {
	dim := space.Dim()
	opts.fill(dim)
	if prior == nil {
		prior = NewPrior(space, nil)
	}
	rng := stats.NewRNG(opts.Seed ^ 0x5851f42d4c957f2d)

	var finalists []incumbent
	budgetHit := false

triage:
	for s := opts.SMax; s >= 0; s-- {
		// Bracket s: n candidates starting at fidelity r, s+1 rungs.
		n := int(math.Ceil(float64(opts.SMax+1) / float64(s+1) * math.Pow(opts.Eta, float64(s))))
		if n < 1 {
			n = 1
		}
		candidates := sampleCandidates(prior, rng, n, ev.Count())
		for i := 0; i <= s; i++ {
			fid := opts.MaxFidelity * math.Pow(opts.Eta, float64(i-s))
			if fid < opts.MinFidelity {
				fid = opts.MinFidelity
			}
			if fid > opts.MaxFidelity {
				fid = opts.MaxFidelity
			}
			emitRung(opts.Tracer, search.Event{
				Type: search.EventRung, Op: "open", Iter: i, Fidelity: fid,
				Note: fmt.Sprintf("bracket=%d candidates=%d", s, len(candidates)),
			})
			scored := make([]incumbent, 0, len(candidates))
			for _, cfg := range candidates {
				c, perf, err := ev.EvalConfigAt(cfg, fid)
				if err == search.ErrBudget {
					budgetHit = true
					finalists = appendFinalists(finalists, scored, fid, opts.MaxFidelity)
					break triage
				}
				if err != nil {
					return nil, err
				}
				scored = append(scored, incumbent{cfg: c.Clone(), perf: perf})
			}
			sort.SliceStable(scored, func(a, b int) bool {
				return opts.Direction.Better(scored[a].perf, scored[b].perf)
			})
			keep := len(scored)
			if i < s {
				keep = int(float64(len(scored)) / opts.Eta)
				if keep < 1 {
					keep = 1
				}
			}
			scored = scored[:keep]
			bestPerf := 0.0
			if len(scored) > 0 {
				bestPerf = scored[0].perf
			}
			emitRung(opts.Tracer, search.Event{
				Type: search.EventRung, Op: "promote", Iter: i, Fidelity: fid, Perf: bestPerf,
				Note: fmt.Sprintf("bracket=%d survivors=%d", s, len(scored)),
			})
			candidates = candidates[:0]
			for _, sc := range scored {
				candidates = append(candidates, sc.cfg)
			}
			finalists = appendFinalists(finalists, scored, fid, opts.MaxFidelity)
		}
	}

	// Polish: full-fidelity Nelder–Mead from the incumbents' simplex. The
	// seeds are the triage survivors best-first; with no triage (Eta=∞ or
	// SMax<0) they are the prior's own centers, which makes the degenerate
	// schedule exactly plain prior-seeded simplex.
	seeds := seedPoints(space, dedupeBest(finalists, opts.Direction, opts.Survivors))
	if len(seeds) == 0 {
		seeds = prior.SeedPoints()
	}
	polish := opts.Polish
	fallback := polish.Init
	if fallback == nil {
		fallback = search.DistributedInit{}
	}
	polish.Init = search.SeededInit{Seeds: seeds, Fallback: fallback}
	emitRung(opts.Tracer, search.Event{
		Type: search.EventPhase, Op: "polish",
		Note: fmt.Sprintf("seeds=%d budget_hit=%v", len(seeds), budgetHit),
	})
	return search.NelderMeadWithEvaluator(space, ev, polish)
}

// sampleCandidates draws n distinct candidates from the prior mixture
// (distinct within the bracket; a duplicate draw is retried a few times
// before being accepted anyway — tiny grids may not have n distinct
// configurations worth forcing).
func sampleCandidates(prior *Prior, rng *stats.RNG, n, observations int) []search.Config {
	out := make([]search.Config, 0, n)
	seen := make(map[string]bool, n)
	for len(out) < n {
		cfg := prior.Sample(rng, observations)
		key := cfg.Key()
		if seen[key] {
			retried := false
			for attempt := 0; attempt < 4; attempt++ {
				cfg = prior.Sample(rng, observations)
				if k := cfg.Key(); !seen[k] {
					key, retried = k, true
					break
				}
			}
			if !retried {
				out = append(out, cfg) // accept the duplicate: grid exhausted
				continue
			}
		}
		seen[key] = true
		out = append(out, cfg)
	}
	return out
}

// appendFinalists records top-rung results: only configurations measured
// at the schedule's full fidelity are candidate polish seeds — promoting a
// noisy low-fidelity score into the seed ranking would let the noise pick
// the simplex.
func appendFinalists(finalists, scored []incumbent, fid, maxFid float64) []incumbent {
	if fid < maxFid {
		return finalists
	}
	return append(finalists, scored...)
}

// dedupeBest returns the best `keep` incumbents, deduplicated by
// configuration, best first.
func dedupeBest(in []incumbent, dir search.Direction, keep int) []incumbent {
	sorted := append([]incumbent(nil), in...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return dir.Better(sorted[a].perf, sorted[b].perf)
	})
	out := make([]incumbent, 0, keep)
	seen := map[string]bool{}
	for _, inc := range sorted {
		key := inc.cfg.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, inc)
		if len(out) == keep {
			break
		}
	}
	return out
}

func seedPoints(space *search.Space, incs []incumbent) [][]float64 {
	out := make([][]float64, len(incs))
	for i, inc := range incs {
		out[i] = space.Continuous(inc.cfg)
	}
	return out
}

// MeasurementUnits sums a trace's real measurement cost in full-fidelity
// units: a full-fidelity measurement costs 1, a fidelity-f rung sample
// costs f, and estimated answers cost nothing. This is the scheduler's
// native accounting; benches convert units to wall-clock seconds with
// their simulator's horizon.
func MeasurementUnits(tr search.Trace) float64 {
	units := 0.0
	for _, e := range tr {
		if e.Estimated {
			continue
		}
		if search.FullFidelity(e.Fidelity) {
			units++
		} else {
			units += e.Fidelity
		}
	}
	return units
}

// emitRung forwards a scheduler event through the nil-safe tracer
// convention (timestamped like every other emission site).
func emitRung(t search.Tracer, e search.Event) {
	if t == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	t.Emit(e)
}
