package mfsearch

import (
	"math"
	"reflect"
	"testing"

	"harmony/internal/search"
	"harmony/internal/stats"
)

func testSpace() *search.Space {
	return search.MustSpace(
		search.Param{Name: "a", Min: 0, Max: 100, Step: 1, Default: 50},
		search.Param{Name: "b", Min: 0, Max: 100, Step: 1, Default: 50},
		search.Param{Name: "c", Min: 0, Max: 100, Step: 1, Default: 50},
	)
}

// quadAt is a deterministic fidelity-aware objective: the full-fidelity
// value is an exact paraboloid with its optimum at (70, 30, 50); reduced
// fidelity overlays a config+fidelity-hashed relative error whose
// amplitude grows as fidelity shrinks.
func quadAt(cfg search.Config, fidelity float64) float64 {
	target := [3]int{70, 30, 50}
	v := 0.0
	for i, x := range cfg {
		d := float64(x - target[i])
		v += d * d
	}
	if search.FullFidelity(fidelity) {
		return v
	}
	h := uint64(1469598103934665603)
	for _, x := range cfg {
		h ^= uint64(int64(x))
		h *= 1099511628211
	}
	h ^= math.Float64bits(fidelity)
	h *= 1099511628211
	u := float64(h>>11) / (1 << 53)
	return v*(1+0.3*(1-fidelity)*(2*u-1)) + 1e-9 // keep strictly positive
}

type quadObjective struct{ fullCalls, lowCalls int }

func (q *quadObjective) Measure(cfg search.Config) float64 {
	q.fullCalls++
	return quadAt(cfg, 1)
}

func (q *quadObjective) MeasureAt(cfg search.Config, fidelity float64) float64 {
	if search.FullFidelity(fidelity) {
		return q.Measure(cfg)
	}
	q.lowCalls++
	return quadAt(cfg, fidelity)
}

func TestPriorSampleMixesAndDecays(t *testing.T) {
	space := testSpace()
	prior := NewPrior(space, []search.Config{{70, 30, 50}})
	if prior.Len() != 1 {
		t.Fatalf("prior.Len() = %d, want 1", prior.Len())
	}
	if m := prior.Mass(0); m != DefaultWeight {
		t.Fatalf("Mass(0) = %v, want %v", m, DefaultWeight)
	}
	if m0, m1 := prior.Mass(0), prior.Mass(1000); m1 >= m0 {
		t.Fatalf("prior mass must decay: Mass(0)=%v Mass(1000)=%v", m0, m1)
	}
	// With full prior mass early on, draws must concentrate near the center.
	rng := stats.NewRNG(7)
	near, total := 0, 400
	for i := 0; i < total; i++ {
		cfg := prior.Sample(rng, 0)
		if !space.Contains(cfg) {
			t.Fatalf("sample %v outside the space", cfg)
		}
		d := 0.0
		for j, v := range cfg {
			n := space.Params[j].Normalize(v) - space.Params[j].Normalize([]int{70, 30, 50}[j])
			d += n * n
		}
		if math.Sqrt(d) < 3*DefaultSigma {
			near++
		}
	}
	// 75% of draws are prior-centered; nearly all of those land within 3σ.
	if near < total/2 {
		t.Fatalf("only %d/%d early draws near the prior center", near, total)
	}
	// Saturated with observations the same prior must sample ~uniformly.
	rng = stats.NewRNG(7)
	nearLate := 0
	for i := 0; i < total; i++ {
		cfg := prior.Sample(rng, 100000)
		d := 0.0
		for j, v := range cfg {
			n := space.Params[j].Normalize(v) - space.Params[j].Normalize([]int{70, 30, 50}[j])
			d += n * n
		}
		if math.Sqrt(d) < 3*DefaultSigma {
			nearLate++
		}
	}
	if nearLate >= near {
		t.Fatalf("prior decay had no effect: near=%d nearLate=%d", near, nearLate)
	}
}

func TestPriorEmptyIsUniform(t *testing.T) {
	space := testSpace()
	prior := NewPrior(space, nil)
	if m := prior.Mass(0); m != 0 {
		t.Fatalf("empty prior Mass(0) = %v, want 0", m)
	}
	rng := stats.NewRNG(3)
	for i := 0; i < 100; i++ {
		if cfg := prior.Sample(rng, 0); !space.Contains(cfg) {
			t.Fatalf("uniform sample %v outside the space", cfg)
		}
	}
}

func TestRunFindsOptimumCheaply(t *testing.T) {
	space := testSpace()
	obj := &quadObjective{}
	ev := search.NewEvaluator(space, obj)
	ev.MaxEvals = 200
	tr := &search.CollectTracer{}
	ev.Tracer = tr
	prior := NewPrior(space, []search.Config{{68, 32, 48}, {80, 20, 60}})
	res, err := Run(space, ev, prior, Options{
		Direction: search.Minimize,
		Seed:      11,
		Tracer:    tr,
		Polish:    search.NelderMeadOptions{MaxEvals: 200},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.BestPerf > 150 {
		t.Fatalf("BestPerf = %v, want near-optimal (< 150)", res.BestPerf)
	}
	// The best must be a full-fidelity truth, never a noisy rung sample.
	best := res.Trace.Best(search.Minimize)
	if !search.FullFidelity(best.Fidelity) {
		t.Fatalf("reported best has fidelity %v, want full", best.Fidelity)
	}
	if obj.lowCalls == 0 {
		t.Fatal("no reduced-fidelity measurements were made")
	}
	// Rung events must appear: open and promote, with fidelity set.
	opens, promotes := 0, 0
	for _, e := range tr.Events {
		if e.Type != search.EventRung {
			continue
		}
		if e.Fidelity <= 0 || e.Fidelity > 1 {
			t.Fatalf("rung event with fidelity %v", e.Fidelity)
		}
		switch e.Op {
		case "open":
			opens++
		case "promote":
			promotes++
		}
	}
	if opens == 0 || promotes == 0 || opens != promotes {
		t.Fatalf("rung events: opens=%d promotes=%d, want equal and > 0", opens, promotes)
	}
	// Triage must have been cheaper than its eval count: units < evals.
	units := MeasurementUnits(res.Trace)
	if units >= float64(res.Evals) {
		t.Fatalf("MeasurementUnits = %v with %d evals: triage saved nothing", units, res.Evals)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *search.Result {
		space := testSpace()
		ev := search.NewEvaluator(space, &quadObjective{})
		ev.MaxEvals = 150
		prior := NewPrior(space, []search.Config{{68, 32, 48}})
		res, err := Run(space, ev, prior, Options{Direction: search.Minimize, Seed: 5})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatal("identical seeds produced different traces")
	}
	if !a.BestConfig.Equal(b.BestConfig) || a.BestPerf != b.BestPerf {
		t.Fatalf("results diverge: %v/%v vs %v/%v", a.BestConfig, a.BestPerf, b.BestConfig, b.BestPerf)
	}
}

func TestRunBudgetExhaustionDuringTriage(t *testing.T) {
	space := testSpace()
	ev := search.NewEvaluator(space, &quadObjective{})
	ev.MaxEvals = 5 // dies inside the first rung
	prior := NewPrior(space, []search.Config{{68, 32, 48}})
	res, err := Run(space, ev, prior, Options{Direction: search.Minimize, Seed: 2})
	if err != nil {
		t.Fatalf("Run with tiny budget: %v", err)
	}
	if res.Converged {
		t.Fatal("budget-starved run reported convergence")
	}
	if res.Evals > 5 {
		t.Fatalf("budget overrun: %d evals", res.Evals)
	}
}

// TestEtaInfTrajectoryIdentity is the satellite property test: with
// eta = ∞ the schedule collapses to a single rung at max fidelity — no
// triage — so Run must be trajectory-identical to plain prior-seeded
// simplex (NelderMeadWithEvaluator over SeededInit), event for event.
func TestEtaInfTrajectoryIdentity(t *testing.T) {
	seedSets := [][]search.Config{
		{{68, 32, 48}},
		{{68, 32, 48}, {80, 20, 60}, {10, 90, 10}},
		nil,
	}
	for _, seeds := range seedSets {
		for _, seed := range []uint64{1, 42, 977} {
			space := testSpace()

			evA := search.NewEvaluator(space, &quadObjective{})
			evA.MaxEvals = 120
			trA := &search.CollectTracer{}
			evA.Tracer = trA
			prior := NewPrior(space, seeds)
			resA, err := Run(space, evA, prior, Options{
				Eta:       math.Inf(1),
				Direction: search.Minimize,
				Seed:      seed,
				Tracer:    trA,
				Polish:    search.NelderMeadOptions{MaxEvals: 120},
			})
			if err != nil {
				t.Fatalf("mfsearch run: %v", err)
			}

			evB := search.NewEvaluator(space, &quadObjective{})
			evB.MaxEvals = 120
			trB := &search.CollectTracer{}
			evB.Tracer = trB
			resB, err := search.NelderMeadWithEvaluator(space, evB, search.NelderMeadOptions{
				MaxEvals:  120,
				Direction: search.Minimize,
				Tracer:    trB,
				Init: search.SeededInit{
					Seeds:    NewPrior(space, seeds).SeedPoints(),
					Fallback: search.DistributedInit{},
				},
			})
			if err != nil {
				t.Fatalf("plain simplex run: %v", err)
			}

			if !resA.BestConfig.Equal(resB.BestConfig) || resA.BestPerf != resB.BestPerf {
				t.Fatalf("seed %d: results diverge: %v/%v vs %v/%v",
					seed, resA.BestConfig, resA.BestPerf, resB.BestConfig, resB.BestPerf)
			}
			if !reflect.DeepEqual(resA.Trace, resB.Trace) {
				t.Fatalf("seed %d: traces diverge (%d vs %d entries)",
					seed, len(resA.Trace), len(resB.Trace))
			}
			// Event-stream identity: mfsearch adds exactly one extra
			// EventPhase("polish") marker before the kernel; everything
			// else must match byte for byte once timestamps are cleared.
			a := stripTimes(filterPhase(trA.Events, "polish"))
			b := stripTimes(trB.Events)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d: event streams diverge (%d vs %d events)", seed, len(a), len(b))
			}
		}
	}
}

func filterPhase(events []search.Event, op string) []search.Event {
	out := make([]search.Event, 0, len(events))
	for _, e := range events {
		if e.Type == search.EventPhase && e.Op == op {
			continue
		}
		out = append(out, e)
	}
	return out
}

func stripTimes(events []search.Event) []search.Event {
	out := append([]search.Event(nil), events...)
	for i := range out {
		out[i].Time = search.Event{}.Time
	}
	return out
}

func TestMeasurementUnits(t *testing.T) {
	tr := search.Trace{
		{Perf: 1},                  // full
		{Perf: 2, Fidelity: 0.25},  // quarter
		{Perf: 3, Estimated: true}, // free
		{Perf: 4, Fidelity: 1},     // full (explicit)
	}
	if got := MeasurementUnits(tr); got != 2.25 {
		t.Fatalf("MeasurementUnits = %v, want 2.25", got)
	}
}
