// Package mfsearch is the multi-fidelity search subsystem: a
// Hyperband-style successive-halving scheduler over cheap low-fidelity
// measurements, seeded from the prior-run experience database, with the
// surviving incumbents handed to full-fidelity Nelder–Mead polish through
// the existing search.Evaluator — so tracing, the eval cache and failure
// budgets all apply unchanged.
//
// The design follows PriorBand: candidate configurations are drawn from a
// mixture of prior-weighted samples (Gaussians around the best prior-run
// configurations in normalized space) and uniform samples, with the prior
// mass decaying toward uniform as real observations accumulate — a stale
// or mismatched prior can slow the search down but never pin it.
package mfsearch

import (
	"math"

	"harmony/internal/search"
	"harmony/internal/stats"
)

// Prior defaults.
const (
	// DefaultSigma is the per-dimension Gaussian width (in normalized
	// [0, 1] coordinates) of prior-centered draws.
	DefaultSigma = 0.15
	// DefaultWeight is the initial probability that a candidate is drawn
	// from the prior rather than uniformly.
	DefaultWeight = 0.75
	// DefaultDecay is the observation count at which the prior mass has
	// halved: w(obs) = Weight / (1 + obs/Decay).
	DefaultDecay = 32.0
)

// Prior is the candidate-sampling distribution built from a session's
// matched experience-database namespace. The zero value is unusable; build
// one with NewPrior. With no seed configurations every draw is uniform, so
// a cold start degrades gracefully to plain Hyperband.
type Prior struct {
	// Sigma, Weight and Decay tune the mixture (see the package defaults).
	Sigma  float64
	Weight float64
	Decay  float64

	space   *search.Space
	centers [][]float64 // normalized prior centers, best first
	points  [][]float64 // the same centers as continuous points (for seeding)
}

// NewPrior builds a prior over the space centered on the given historical
// configurations, ordered best first (the order the experience store's
// Best selection produces). Configurations of the wrong dimension are
// skipped.
func NewPrior(space *search.Space, seeds []search.Config) *Prior {
	p := &Prior{
		Sigma:  DefaultSigma,
		Weight: DefaultWeight,
		Decay:  DefaultDecay,
		space:  space,
	}
	for _, cfg := range seeds {
		if len(cfg) != space.Dim() || !space.Contains(cfg) {
			continue
		}
		p.centers = append(p.centers, space.Normalized(cfg))
		p.points = append(p.points, space.Continuous(cfg))
	}
	return p
}

// Len returns the number of prior centers.
func (p *Prior) Len() int { return len(p.centers) }

// SeedPoints returns the prior centers as continuous points, best first —
// the exact seed list a warm-started simplex would use (search.SeededInit).
func (p *Prior) SeedPoints() [][]float64 {
	out := make([][]float64, len(p.points))
	for i, pt := range p.points {
		out[i] = append([]float64(nil), pt...)
	}
	return out
}

// Mass returns the current prior mass given the number of real
// observations accumulated so far: Weight / (1 + obs/Decay), or 0 with no
// centers. It decays toward zero, so late brackets explore uniformly no
// matter how confident the prior started.
func (p *Prior) Mass(observations int) float64 {
	if len(p.centers) == 0 {
		return 0
	}
	return p.Weight / (1 + float64(observations)/p.Decay)
}

// Sample draws one candidate configuration: with probability
// Mass(observations) a Gaussian perturbation of a random prior center,
// uniform over the space otherwise. The draw is snapped to the parameter
// grid. Deterministic in the RNG state.
func (p *Prior) Sample(rng *stats.RNG, observations int) search.Config {
	dim := p.space.Dim()
	pt := make([]float64, dim)
	if rng.Float64() < p.Mass(observations) {
		center := p.centers[rng.Intn(len(p.centers))]
		for j := 0; j < dim; j++ {
			pt[j] = clamp01(center[j] + p.Sigma*gauss(rng))
		}
	} else {
		for j := 0; j < dim; j++ {
			pt[j] = rng.Float64()
		}
	}
	cont := make([]float64, dim)
	for j, prm := range p.space.Params {
		cont[j] = float64(prm.Min) + pt[j]*float64(prm.Max-prm.Min)
	}
	return p.space.Snap(cont)
}

// gauss draws a standard normal variate (Box–Muller; one draw per call so
// sampling stays a pure function of the RNG sequence).
func gauss(rng *stats.RNG) float64 {
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
