// Package harmony_test holds the benchmark harness: one benchmark per table
// and figure of the paper (regenerating the experiment and reporting its
// headline metric), plus micro-benchmarks of the core algorithms.
//
// Run with:
//
//	go test -bench=. -benchmem
package harmony_test

import (
	"strconv"
	"strings"
	"testing"

	"harmony/internal/cachesim"
	"harmony/internal/climate"
	"harmony/internal/datagen"
	"harmony/internal/estimate"
	"harmony/internal/experiment"
	"harmony/internal/rsl"
	"harmony/internal/scilib"
	"harmony/internal/search"
	"harmony/internal/sensitivity"
	"harmony/internal/stats"
	"harmony/internal/tpcw"
	"harmony/internal/webservice"
)

// runExperiment executes an experiment b.N times (quick mode keeps each
// iteration in seconds) and returns the last table.
func runExperiment(b *testing.B, id string) *experiment.Table {
	b.Helper()
	var tbl *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiment.Run(id, experiment.Config{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func cellFloat(b *testing.B, tbl *experiment.Table, row, col int) float64 {
	b.Helper()
	s := strings.Fields(tbl.Cell(row, col))[0]
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q not numeric", row, col, tbl.Cell(row, col))
	}
	return v
}

// BenchmarkFig4PerformanceDistribution regenerates Figure 4 and reports the
// total-variation distance between the web-cluster and synthetic
// distributions (smaller = better match).
func BenchmarkFig4PerformanceDistribution(b *testing.B) {
	tbl := runExperiment(b, "fig4")
	// The distance is in the first note: "... distance ...: 0.123 ...".
	for _, n := range tbl.Notes {
		if strings.Contains(n, "total-variation") {
			fields := strings.Fields(n)
			for _, f := range fields {
				if v, err := strconv.ParseFloat(f, 64); err == nil {
					b.ReportMetric(v, "tv-distance")
					return
				}
			}
		}
	}
}

// BenchmarkFig5Sensitivity regenerates Figure 5 and reports the worst rank
// of the two planted irrelevant parameters at 0% noise (15 = last, ideal).
func BenchmarkFig5Sensitivity(b *testing.B) {
	tbl := runExperiment(b, "fig5")
	// Count how many parameters have zero sensitivity at 0% noise; the two
	// irrelevant ones must be among them.
	zero := 0.0
	for row := range tbl.Rows {
		if cellFloat(b, tbl, row, 1) == 0 {
			zero++
		}
	}
	b.ReportMetric(zero, "zero-sens-params")
}

// BenchmarkFig6TopN regenerates Figure 6 and reports the time saving of
// tuning 5 parameters instead of all 15 at 0% noise.
func BenchmarkFig6TopN(b *testing.B) {
	tbl := runExperiment(b, "fig6")
	t5 := cellFloat(b, tbl, 1, 1)
	t15 := cellFloat(b, tbl, len(tbl.Rows)-1, 1)
	if t15 > 0 {
		b.ReportMetric(100*(1-t5/t15), "%time-saved")
	}
}

// BenchmarkFig7ExperienceDistance regenerates Figure 7 and reports the
// ratio of far-experience to near-experience tuning time.
func BenchmarkFig7ExperienceDistance(b *testing.B) {
	tbl := runExperiment(b, "fig7")
	near := cellFloat(b, tbl, 0, 1)
	far := cellFloat(b, tbl, len(tbl.Rows)-1, 1)
	if near > 0 {
		b.ReportMetric(far/near, "far/near-time")
	}
}

// BenchmarkFig8WebSensitivity regenerates Figure 8 and reports the
// cache-memory sensitivity contrast (shopping over ordering).
func BenchmarkFig8WebSensitivity(b *testing.B) {
	tbl := runExperiment(b, "fig8")
	for row := range tbl.Rows {
		if tbl.Cell(row, 0) == "PROXYCacheMem" {
			sh, or := cellFloat(b, tbl, row, 1), cellFloat(b, tbl, row, 2)
			if or > 0 {
				b.ReportMetric(sh/or, "cache-shop/order")
			}
			return
		}
	}
}

// BenchmarkFig9WebTopN regenerates Figure 9 and reports the shopping time
// saving of tuning 3 parameters instead of all 10.
func BenchmarkFig9WebTopN(b *testing.B) {
	tbl := runExperiment(b, "fig9")
	t3 := cellFloat(b, tbl, 1, 1)
	t10 := cellFloat(b, tbl, len(tbl.Rows)-1, 1)
	if t10 > 0 {
		b.ReportMetric(100*(1-t3/t10), "%time-saved")
	}
}

// BenchmarkTable1SearchRefinement regenerates Table 1 and reports the
// shopping tuning-time reduction of the improved kernel.
func BenchmarkTable1SearchRefinement(b *testing.B) {
	tbl := runExperiment(b, "table1")
	secsOrig := cellFloat(b, tbl, 0, 4)
	secsImpr := cellFloat(b, tbl, 1, 4)
	if secsOrig > 0 {
		b.ReportMetric(100*(1-secsImpr/secsOrig), "%time-saved")
	}
}

// BenchmarkTable2PriorHistories regenerates Table 2 and reports the
// shopping convergence-time reduction from prior histories.
func BenchmarkTable2PriorHistories(b *testing.B) {
	tbl := runExperiment(b, "table2")
	without := cellFloat(b, tbl, 0, 2)
	with := cellFloat(b, tbl, 1, 2)
	if without > 0 {
		b.ReportMetric(100*(1-with/without), "%conv-saved")
	}
}

// BenchmarkAppendixBRestriction regenerates the Appendix B comparison and
// reports the search-space reduction factor of the first scenario.
func BenchmarkAppendixBRestriction(b *testing.B) {
	tbl := runExperiment(b, "appB")
	restricted := cellFloat(b, tbl, 0, 1)
	unrestricted := cellFloat(b, tbl, 0, 2)
	if restricted > 0 {
		b.ReportMetric(unrestricted/restricted, "space-reduction")
	}
}

// BenchmarkAblationEvalCache regenerates the cache ablation and reports how
// many probe requests the cache answered for free.
func BenchmarkAblationEvalCache(b *testing.B) {
	tbl := runExperiment(b, "ablation-cache")
	b.ReportMetric(cellFloat(b, tbl, 0, 2), "free-probes")
}

// BenchmarkAblationClassifierDeltaV regenerates the Δv′ ablation.
func BenchmarkAblationClassifierDeltaV(b *testing.B) {
	runExperiment(b, "ablation-deltav")
}

// BenchmarkAblationEstimateNeighbors regenerates the estimation ablation.
func BenchmarkAblationEstimateNeighbors(b *testing.B) {
	tbl := runExperiment(b, "ablation-estimate")
	nearest := cellFloat(b, tbl, 0, 1)
	latest := cellFloat(b, tbl, 1, 1)
	if latest > 0 {
		b.ReportMetric(nearest/latest, "nearest/latest-err")
	}
}

// BenchmarkAblationInit regenerates the initial-simplex ablation.
func BenchmarkAblationInit(b *testing.B) {
	tbl := runExperiment(b, "ablation-init")
	extreme := cellFloat(b, tbl, 0, 2)
	distributed := cellFloat(b, tbl, 1, 2)
	b.ReportMetric(distributed-extreme, "worst-seen-gain")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core algorithms.

func BenchmarkNelderMead15Dim(b *testing.B) {
	model, err := datagen.New(datagen.PaperSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	w := model.WorkloadSpace().DefaultConfig()
	obj := model.Objective(w, 0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.NelderMead(model.TunableSpace(), obj, search.NelderMeadOptions{
			Direction: search.Maximize, MaxEvals: 150, Init: search.DistributedInit{},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterSimulation(b *testing.B) {
	space := webservice.Space()
	def := space.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := webservice.NewCluster(webservice.Options{Seed: uint64(i)})
		if _, err := c.Run(def, tpcw.Shopping); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSensitivitySweep(b *testing.B) {
	model, err := datagen.New(datagen.PaperSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	obj := model.Objective(model.WorkloadSpace().DefaultConfig(), 0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sensitivity.Analyze(model.TunableSpace(), obj, sensitivity.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyntheticEval(b *testing.B) {
	model, err := datagen.New(datagen.PaperSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := model.TunableSpace().DefaultConfig()
	w := model.WorkloadSpace().DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Eval(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriangulationEstimate(b *testing.B) {
	space := search.MustSpace(
		search.Param{Name: "x", Min: 0, Max: 100, Step: 1, Default: 50},
		search.Param{Name: "y", Min: 0, Max: 100, Step: 1, Default: 50},
		search.Param{Name: "z", Min: 0, Max: 100, Step: 1, Default: 50},
	)
	rng := stats.NewRNG(3)
	records := make([]estimate.Record, 40)
	for i := range records {
		c := search.Config{rng.IntRange(0, 100), rng.IntRange(0, 100), rng.IntRange(0, 100)}
		records[i] = estimate.Record{Config: c, Perf: float64(c[0] + 2*c[1] - c[2]), Seq: i}
	}
	est := estimate.New(space)
	target := search.Config{33, 44, 55}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(records, target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSLParse(b *testing.B) {
	src := `
{ harmonyBundle B { int {1 8 1} } }
{ harmonyBundle C { int {1 9-$B 1} } }
{ harmonyBundle D { int {1 (10-$B-$C)*2 1} } }
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rsl.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTPCWStream(b *testing.B) {
	rng := stats.NewRNG(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs := tpcw.GenerateStream(tpcw.Shopping, 1000, 1, rng)
		tpcw.Characteristics(reqs)
	}
}

// BenchmarkMotivatingClimate regenerates the §4.1 climate example and
// reports the ocean-heavy speedup of tuning over the even split.
func BenchmarkMotivatingClimate(b *testing.B) {
	tbl := runExperiment(b, "motivating-climate")
	even := cellFloat(b, tbl, 1, 1)
	tuned := cellFloat(b, tbl, 1, 2)
	if even > 0 {
		b.ReportMetric(tuned/even, "tuned/even-speedup")
	}
}

// BenchmarkBaselineSearch regenerates the algorithm comparison.
func BenchmarkBaselineSearch(b *testing.B) {
	runExperiment(b, "baseline-search")
}

func BenchmarkPowell15Dim(b *testing.B) {
	model, err := datagen.New(datagen.PaperSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	obj := model.Objective(model.WorkloadSpace().DefaultConfig(), 0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Powell(model.TunableSpace(), obj, search.PowellOptions{
			Direction: search.Maximize, MaxEvals: 150,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlackettBurmanScreen(b *testing.B) {
	model, err := datagen.New(datagen.PaperSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	obj := model.Objective(model.WorkloadSpace().DefaultConfig(), 0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sensitivity.PlackettBurman(model.TunableSpace(), obj, sensitivity.ScreeningOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSimplexWebCluster measures the wall-clock effect of
// parallel batch evaluation when measurements are genuinely expensive
// (full cluster simulations).
func BenchmarkParallelSimplexWebCluster(b *testing.B) {
	for _, workers := range []int{1, 4} {
		name := "serial"
		if workers > 1 {
			name = "parallel4"
		}
		b.Run(name, func(b *testing.B) {
			space := webservice.Space()
			for i := 0; i < b.N; i++ {
				cluster := webservice.NewCluster(webservice.Options{Duration: 30, Warmup: 5, Seed: uint64(i)})
				obj := cluster.Objective(tpcw.Shopping, false)
				if _, err := search.NelderMead(space, obj, search.NelderMeadOptions{
					Direction: search.Maximize, MaxEvals: 40,
					Init: search.DistributedInit{}, Parallel: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClimateStep(b *testing.B) {
	model := climate.New(climate.Model{Steps: 50, Seed: 1})
	cfg := model.BestStaticAllocation(climate.Balanced)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Run(cfg, climate.Balanced); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheSimAccess(b *testing.B) {
	c, err := cachesim.New(cachesim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*8) % 32768)
	}
}

func BenchmarkSciLibMatVec(b *testing.B) {
	lib := scilib.NewLibrary()
	m := scilib.NewDense(256, 1)
	x := make([]float64, 256)
	for _, v := range []scilib.Version{scilib.VersionNaive, scilib.VersionBlocked, scilib.VersionCSR} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lib.MatVec(m, x, v, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMotivatingSciLib regenerates the §4.2 library example and
// reports the sparse matrix's saving over the naive kernel.
func BenchmarkMotivatingSciLib(b *testing.B) {
	tbl := runExperiment(b, "motivating-scilib")
	b.ReportMetric(cellFloat(b, tbl, 1, 4), "%sparse-saving")
}
